package dualindex

import "time"

// FlushPhases breaks one batch flush's wall-clock time into the paper's
// phases: the per-word apply (allocation, bucket and directory
// bookkeeping), the deferred long-list data movement, the striped bucket
// write, the checkpoint (directory + deleted list + superblock) and the
// release of the previous images. For a sharded engine the durations are
// sums over the shards' flushes — CPU-seconds of flush work, not elapsed
// time, since shards flush concurrently.
type FlushPhases struct {
	Plan        time.Duration
	LongApply   time.Duration
	BucketFlush time.Duration
	Checkpoint  time.Duration
	Release     time.Duration
}

// Total sums the phase durations.
func (p FlushPhases) Total() time.Duration {
	return p.Plan + p.LongApply + p.BucketFlush + p.Checkpoint + p.Release
}

func (p FlushPhases) add(o FlushPhases) FlushPhases {
	p.Plan += o.Plan
	p.LongApply += o.LongApply
	p.BucketFlush += o.BucketFlush
	p.Checkpoint += o.Checkpoint
	p.Release += o.Release
	return p
}

// BatchStats summarises one flushed batch. For a sharded engine the fields
// are sums over every shard's batch of the same flush.
type BatchStats struct {
	Docs      int
	Words     int
	Postings  int64
	Evictions int
	ReadOps   int64
	WriteOps  int64
	// Phases is where the flush spent its time, summed across shards.
	Phases FlushPhases
}

// add returns the field-wise sum of two batch summaries — how FlushBatch
// aggregates the per-shard batches into one answer.
func (b BatchStats) add(o BatchStats) BatchStats {
	b.Docs += o.Docs
	b.Words += o.Words
	b.Postings += o.Postings
	b.Evictions += o.Evictions
	b.ReadOps += o.ReadOps
	b.WriteOps += o.WriteOps
	b.Phases = b.Phases.add(o.Phases)
	return b
}

// Stats describes the engine's index state. For a sharded engine the counts
// (words, long lists, bucket words, I/O and cache counters, deletions) are
// summed across shards — a word indexed by several shards counts once per
// shard, since each shard keeps its own vocabulary — while Utilization and
// AvgReadsPerList are means over long lists and Batches is the largest
// per-shard batch count (shards whose pending batch was empty skip a
// flush). A single-shard engine reports exactly the unsharded numbers.
type Stats struct {
	Docs            int64
	Words           int
	Batches         int
	LongLists       int
	BucketWords     int
	Utilization     float64
	AvgReadsPerList float64
	ReadOps         int64
	WriteOps        int64
	// ReadBlocks and WriteBlocks count the blocks those operations moved —
	// the I/O volume behind the operation counts. With a compressing codec,
	// fewer blocks move for the same postings; the delta against CodecRaw is
	// the compression win the bench-compress target measures.
	ReadBlocks  int64
	WriteBlocks int64
	Deleted     int
	// DocsIndexed counts the documents currently applied to the on-disk
	// index (flushed minus swept); DeadFraction is Deleted over DocsIndexed
	// — the dead-posting signal the maintenance controller sweeps on. The
	// count is rebuilt from the document store on reopen; an index reopened
	// without one reports DocsIndexed 0, and DeadFraction then saturates at
	// 1.0 whenever deletions exist (unknown errs toward sweeping).
	DocsIndexed  int64
	DeadFraction float64
	// CodecRawBytes and CodecEncodedBytes are the long-list codec's
	// cumulative input and output volume: how many raw posting bytes were
	// packed into how many encoded bytes. Both zero under CodecRaw (nothing
	// is re-encoded). CompressionRatio is raw/encoded, 0 before any packing.
	CodecRawBytes     int64
	CodecEncodedBytes int64
	CompressionRatio  float64
	// PendingDocs and PendingPostings are the unflushed in-memory volume:
	// documents added since the last flush and the postings they carry —
	// the live tier's size when Options.LiveSearch is on, the pending bag
	// map's otherwise (the two representations always agree). A flush
	// drains them to zero; mid-flush, the batch being applied is no longer
	// counted here.
	PendingDocs     int
	PendingPostings int64
	// MaxBucketLoadFactor is the fullest shard's bucket load factor. The
	// engine-wide BucketLoadFactor is a mean, and hash routing keeps the
	// shards near it — but a hot shard can saturate (evicting short lists
	// early) while the mean still looks healthy, so rebalancing decisions
	// should watch the max. For a single shard, max and mean coincide.
	MaxBucketLoadFactor float64
	// Block-cache counters (all zero unless Options.CacheBlocks > 0).
	// Counted per block: a three-block read with one resident block scores
	// one hit and two misses.
	CacheHits      int64
	CacheMisses    int64
	CacheEvictions int64
	CacheHitRate   float64
}

// stats reports one shard's statistics (every field but Docs, which only
// the engine knows). During a flush, the structural numbers come from the
// flush's snapshot (pre-flush state); the I/O and cache counters are always
// live.
func (s *shard) stats() Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st := Stats{
		Words:       s.vocab.Len(),
		ReadOps:     s.index.Array().ReadOps(),
		WriteOps:    s.index.Array().WriteOps(),
		ReadBlocks:  s.index.Array().ReadBlocks(),
		WriteBlocks: s.index.Array().WriteBlocks(),
	}
	st.CodecRawBytes, st.CodecEncodedBytes = s.index.LongLists().CompressionBytes()
	if st.CodecEncodedBytes > 0 {
		st.CompressionRatio = float64(st.CodecRawBytes) / float64(st.CodecEncodedBytes)
	}
	if s.snap != nil {
		st.Batches = s.snap.Batches()
		st.LongLists = s.snap.Directory().NumWords()
		st.BucketWords = s.snap.Buckets().TotalWords()
		st.Utilization = s.snap.Directory().Utilization()
		st.AvgReadsPerList = s.snap.Directory().AvgReadsPerList()
		st.Deleted = s.snap.DeletedCount()
		b := s.snap.Buckets()
		if capacity := float64(b.NumBuckets()) * float64(b.BucketSize()); capacity > 0 {
			st.MaxBucketLoadFactor = float64(b.TotalLoad()) / capacity
		}
	} else {
		st.Batches = s.index.Batches()
		st.LongLists = s.index.Directory().NumWords()
		st.BucketWords = s.index.Buckets().TotalWords()
		st.Utilization = s.index.Directory().Utilization()
		st.AvgReadsPerList = s.index.Directory().AvgReadsPerList()
		st.Deleted = s.index.DeletedCount()
		st.MaxBucketLoadFactor = s.index.BucketLoadFactor()
	}
	st.DocsIndexed = int64(s.docsIndexed)
	st.DeadFraction = deadFraction(s.docsIndexed, st.Deleted)
	st.PendingDocs = s.pendingDocs
	st.PendingPostings = s.pendingPostings
	if s.cache != nil {
		cs := s.cache.Stats()
		st.CacheHits = cs.Hits
		st.CacheMisses = cs.Misses
		st.CacheEvictions = cs.Evictions
		st.CacheHitRate = cs.HitRate()
	}
	return st
}

// Stats reports current index statistics, aggregated over the shards.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	docs := int64(e.nextDoc)
	e.mu.Unlock()
	e.stateMu.RLock()
	defer e.stateMu.RUnlock()
	if len(e.shards) == 1 {
		// Exactly the single shard's numbers — no aggregation arithmetic, so
		// the unsharded engine's Stats are reproduced bit for bit.
		st := e.shards[0].stats()
		st.Docs = docs
		return st
	}
	st := Stats{Docs: docs}
	var utilWeighted, readsWeighted float64
	for _, s := range e.shards {
		ss := s.stats()
		st.Words += ss.Words
		if ss.Batches > st.Batches {
			st.Batches = ss.Batches
		}
		st.LongLists += ss.LongLists
		st.BucketWords += ss.BucketWords
		st.ReadOps += ss.ReadOps
		st.WriteOps += ss.WriteOps
		st.ReadBlocks += ss.ReadBlocks
		st.WriteBlocks += ss.WriteBlocks
		st.CodecRawBytes += ss.CodecRawBytes
		st.CodecEncodedBytes += ss.CodecEncodedBytes
		st.Deleted += ss.Deleted
		st.DocsIndexed += ss.DocsIndexed
		st.PendingDocs += ss.PendingDocs
		st.PendingPostings += ss.PendingPostings
		st.CacheHits += ss.CacheHits
		st.CacheMisses += ss.CacheMisses
		st.CacheEvictions += ss.CacheEvictions
		if ss.MaxBucketLoadFactor > st.MaxBucketLoadFactor {
			st.MaxBucketLoadFactor = ss.MaxBucketLoadFactor
		}
		utilWeighted += ss.Utilization * float64(ss.LongLists)
		readsWeighted += ss.AvgReadsPerList * float64(ss.LongLists)
	}
	// Weighted means, guarded so an engine with no long lists (or no cache
	// traffic) reports 0 rather than 0/0 = NaN — NaN poisons JSON encoding
	// and any downstream arithmetic.
	if st.LongLists > 0 {
		st.Utilization = utilWeighted / float64(st.LongLists)
		st.AvgReadsPerList = readsWeighted / float64(st.LongLists)
	}
	if total := st.CacheHits + st.CacheMisses; total > 0 {
		st.CacheHitRate = float64(st.CacheHits) / float64(total)
	}
	if st.CodecEncodedBytes > 0 {
		st.CompressionRatio = float64(st.CodecRawBytes) / float64(st.CodecEncodedBytes)
	}
	st.DeadFraction = deadFraction(int(st.DocsIndexed), st.Deleted)
	return st
}

// ShardStats reports each shard's statistics individually, in shard order —
// the per-shard breakdown behind Stats' engine-wide aggregation, served as
// /stats?shard=i and the "shards" array of /metrics.json. Docs is an
// engine-wide count (the identifier allocator's), so the per-shard entries
// leave it zero; DocsIndexed is the per-shard document count.
func (e *Engine) ShardStats() []Stats {
	e.stateMu.RLock()
	defer e.stateMu.RUnlock()
	out := make([]Stats, len(e.shards))
	for i, s := range e.shards {
		out[i] = s.stats()
	}
	return out
}

// BucketLoadFactor reports how full the short-list bucket space is; when it
// approaches 1.0, frequent evictions degrade the short/long division and a
// RebalanceBuckets call is warranted (the paper's §7 maintenance strategy).
// Every shard's bucket space has the same capacity, so the sharded figure
// is the mean of the per-shard load factors.
func (e *Engine) BucketLoadFactor() float64 {
	e.stateMu.RLock()
	defer e.stateMu.RUnlock()
	if len(e.shards) == 1 {
		return e.shards[0].bucketLoadFactor()
	}
	var sum float64
	for _, s := range e.shards {
		sum += s.bucketLoadFactor()
	}
	return sum / float64(len(e.shards))
}
