// Command tracer materialises the paper's decoupled pipeline over real
// files: one invocation produces the exact I/O trace a policy generates
// (the compute-disks output, Figure 6), another replays a trace on the
// disk timing model (the exercise-disks process). Because the stages are
// connected by a file, a trace generated once can be exercised under many
// disk configurations, exactly how the paper varied its parameters.
//
// Usage:
//
//	tracer -make -policy fast-query -out trace.txt -scale 0.25
//	tracer -exercise trace.txt -profile optical -buffer 256
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"dualindex/internal/disk"
	"dualindex/internal/experiments"
	"dualindex/internal/longlist"
	"dualindex/internal/sim"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tracer: ")
	var (
		mk       = flag.Bool("make", false, "generate a trace")
		out      = flag.String("out", "trace.txt", "trace output path (with -make)")
		policy   = flag.String("policy", "balanced", "fast-update | balanced | fast-query | extents (with -make)")
		scale    = flag.Float64("scale", 0.25, "corpus scale factor (with -make)")
		exercise = flag.String("exercise", "", "trace file to replay on the timing model")
		profile  = flag.String("profile", "seagate", "seagate | fast | optical (with -exercise)")
		buffer   = flag.Int64("buffer", 256, "coalescing buffer in blocks (with -exercise)")
		perBatch = flag.Bool("per-batch", false, "print per-batch times (with -exercise)")
	)
	flag.Parse()

	switch {
	case *mk:
		if err := makeTrace(*out, *policy, *scale); err != nil {
			log.Fatal(err)
		}
	case *exercise != "":
		if err := exerciseTrace(*exercise, *profile, *buffer, *perBatch); err != nil {
			log.Fatal(err)
		}
	default:
		log.Fatal("pass -make or -exercise FILE (see -help)")
	}
}

func policyByName(name string) (longlist.Policy, error) {
	switch name {
	case "fast-update":
		return longlist.UpdateOptimized(), nil
	case "balanced":
		return longlist.NewRecommended(), nil
	case "fast-query":
		return longlist.QueryOptimized(), nil
	case "extents":
		return longlist.FillRecommended(), nil
	}
	return longlist.Policy{}, fmt.Errorf("unknown policy %q", name)
}

func makeTrace(out, policyName string, scale float64) error {
	pol, err := policyByName(policyName)
	if err != nil {
		return err
	}
	params := experiments.DefaultParams().Scaled(scale)
	env, err := experiments.NewEnv(params)
	if err != nil {
		return err
	}
	res, err := sim.ComputeDisks(env.Trace, sim.DiskConfig{
		Geometry:     params.Geometry,
		BlockPosting: params.BlockPosting,
		Policy:       pol,
	})
	if err != nil {
		return err
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	if err := res.Trace.WriteText(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %d operations in %d batches to %s (policy %s)\n",
		res.Trace.Len(), res.Trace.NumBatches(), out, pol)
	return nil
}

func profileByName(name string) (disk.Profile, error) {
	switch name {
	case "seagate":
		return disk.Seagate1993(), nil
	case "fast":
		return disk.FastSCSI1995(), nil
	case "optical":
		return disk.Optical1993(), nil
	}
	return disk.Profile{}, fmt.Errorf("unknown profile %q", name)
}

func exerciseTrace(path, profileName string, buffer int64, perBatch bool) error {
	prof, err := profileByName(profileName)
	if err != nil {
		return err
	}
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	tr, err := disk.ReadText(f)
	f.Close()
	if err != nil {
		return err
	}
	// Infer the geometry from the trace: the largest disk index and block
	// touched.
	geo := disk.DefaultGeometry()
	geo.NumDisks = 0
	for _, op := range tr.Ops() {
		if op.Disk+1 > geo.NumDisks {
			geo.NumDisks = op.Disk + 1
		}
		if op.Block+op.Count > geo.BlocksPerDisk {
			geo.BlocksPerDisk = op.Block + op.Count
		}
	}
	if geo.NumDisks == 0 {
		return fmt.Errorf("empty trace")
	}
	res := sim.ExerciseDisks(tr, geo, prof, buffer)
	var sum time.Duration
	for i, b := range res.Batches {
		sum += b.Elapsed
		if perBatch {
			fmt.Printf("batch %3d: %8.2fs  (%d ops, %d after coalescing)\n",
				i, b.Elapsed.Seconds(), b.Ops, b.CoalescedOps)
		}
	}
	fmt.Printf("%d batches, %d operations, profile %s: total %.1fs\n",
		len(res.Batches), tr.Len(), prof.Name, sum.Seconds())
	return nil
}
