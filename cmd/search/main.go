// Command search runs queries against an index built by cmd/indexer.
//
// Usage:
//
//	search -index idx/ -q 'incremental inverted lists' -k 10
//	search -index idx/ -q '"white mouse" and cat* or title:dog' -docs
//	search -index idx/ -q 'cat and dog' -scoring bm25
//	search -index idx/ "(cat and dog) or mouse"
//	search -index idx/ -vector -k 10 "words of a query document"
//	search -index idx/          # interactive: one query per line on stdin
//
// -q takes the unified query language (see the README's "Query language"
// section) and prints ranked results under -scoring; the legacy flags keep
// their original entry points and output.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strings"
	"time"

	"dualindex"
	"dualindex/internal/obshttp"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("search: ")
	var (
		indexDir = flag.String("index", "idx", "index directory")
		unified  = flag.String("q", "", "unified-language query (phrases, and/or/not, near/k, title:/body:, prefix*); ranked output")
		scoring  = flag.String("scoring", "", "ranking model for -q and -vector: vector (default) or bm25")
		vector   = flag.Bool("vector", false, "vector-space ranking instead of boolean")
		k        = flag.Int("k", 10, "top-k results for ranked queries")
		phrase   = flag.Bool("phrase", false, "exact phrase query (requires an index built with documents kept)")
		near     = flag.Int("near", 0, "proximity window: treat the two query words as 'w1 within N words of w2'")
		docs     = flag.Bool("docs", false, "keep/load stored documents (enables -phrase and -near)")
		live     = flag.Bool("live", false, "serve unflushed documents from the read-optimized live tier (Options.LiveSearch; runtime-only, not recorded in the index)")
		shards   = flag.Int("shards", 0, "index shards (0 adopts the index's manifest — the usual choice)")
		backend  = flag.String("backend", "", "block-store backend (empty adopts the index's manifest — the usual choice)")
		codec    = flag.String("codec", "", "long-list block codec (empty adopts the index's manifest — the usual choice)")
		mmap     = flag.Bool("mmap", false, "serve file-backend reads through a shared mmap where supported")
		metrics  = flag.String("metrics", "", "serve /metrics, /stats, /trace, /maintenance, /healthz and /debug/pprof on this address (e.g. localhost:6060); enables instrumentation")
		slow     = flag.Duration("slow", 0, "log queries slower than this duration (view on the -metrics endpoint's /slow)")
		maintain = flag.Duration("maintain", 0, "run the background maintenance controller at this interval (e.g. 5s); 0 disables it")
	)
	flag.Parse()

	opts := dualindex.Options{
		Dir:           *indexDir,
		Shards:        *shards,
		Backend:       *backend,
		Codec:         *codec,
		MmapReads:     *mmap,
		KeepDocuments: *docs || *phrase || *near > 0,
		LiveSearch:    *live,
		Scoring:       *scoring,
		SlowQuery:     *slow,
	}
	if *metrics != "" {
		opts.Metrics = true
		opts.TraceBuffer = 4096
	}
	if *maintain > 0 {
		opts.Maintenance = &dualindex.MaintenanceOptions{Interval: *maintain}
	}
	eng, err := dualindex.Open(opts)
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()
	if *metrics != "" {
		cfg := obshttp.Config{
			Registry: eng.Metrics(),
			Stats:    func() any { return eng.Stats() },
			ShardStats: func() []any {
				sts := eng.ShardStats()
				out := make([]any, len(sts))
				for i, st := range sts {
					out[i] = st
				}
				return out
			},
			Tracer:      eng.Tracer(),
			SlowQueries: func() any { return eng.SlowQueries() },
			Health: func() obshttp.HealthState {
				h := eng.Health()
				return obshttp.HealthState{Healthy: h.Healthy, Ready: h.Ready, Reasons: h.Reasons}
			},
		}
		if *maintain > 0 {
			cfg.Maintenance = func() any { return eng.Maintenance() }
		}
		go func() {
			if err := http.ListenAndServe(*metrics, obshttp.New(cfg)); err != nil {
				log.Printf("metrics endpoint: %v", err)
			}
		}()
	}

	if *unified != "" {
		if err := runUnified(eng, *unified, *k); err != nil {
			log.Fatal(err)
		}
		return
	}
	if flag.NArg() > 0 {
		q := strings.Join(flag.Args(), " ")
		switch {
		case *phrase:
			err = runPhrase(eng, q)
		case *near > 0:
			err = runNear(eng, flag.Args(), *near)
		default:
			err = runQuery(eng, q, *vector, *k)
		}
		if err != nil {
			log.Fatal(err)
		}
		return
	}
	sc := bufio.NewScanner(os.Stdin)
	fmt.Println("enter queries, one per line (ctrl-D to exit):")
	for sc.Scan() {
		q := strings.TrimSpace(sc.Text())
		if q == "" {
			continue
		}
		if err := runQuery(eng, q, *vector, *k); err != nil {
			fmt.Println("error:", err)
		}
	}
}

// runUnified evaluates one unified-language query and prints the ranked
// results with scores.
func runUnified(eng *dualindex.Engine, q string, k int) error {
	start := time.Now()
	matches, err := eng.Query(q, k)
	if err != nil {
		return err
	}
	fmt.Printf("%d matches in %v\n", len(matches), time.Since(start).Round(time.Microsecond))
	for i, m := range matches {
		fmt.Printf("%2d. doc %-8d score %.3f\n", i+1, m.Doc, m.Score)
	}
	return nil
}

func runPhrase(eng *dualindex.Engine, q string) error {
	docs, err := eng.SearchPhrase(q)
	if err != nil {
		return err
	}
	fmt.Printf("phrase %q: %d documents\n", q, len(docs))
	for _, d := range docs {
		fmt.Printf("doc %d\n", d)
	}
	return nil
}

func runNear(eng *dualindex.Engine, words []string, k int) error {
	if len(words) != 2 {
		return fmt.Errorf("-near takes exactly two words, got %d", len(words))
	}
	docs, err := eng.SearchNear(words[0], words[1], k)
	if err != nil {
		return err
	}
	fmt.Printf("%q within %d of %q: %d documents\n", words[0], k, words[1], len(docs))
	for _, d := range docs {
		fmt.Printf("doc %d\n", d)
	}
	return nil
}

func runQuery(eng *dualindex.Engine, q string, vector bool, k int) error {
	start := time.Now()
	if vector {
		matches, err := eng.SearchVector(q, k)
		if err != nil {
			return err
		}
		fmt.Printf("%d matches in %v\n", len(matches), time.Since(start).Round(time.Microsecond))
		for i, m := range matches {
			fmt.Printf("%2d. doc %-8d score %.3f\n", i+1, m.Doc, m.Score)
		}
		return nil
	}
	docs, err := eng.SearchBoolean(q)
	if err != nil {
		return err
	}
	fmt.Printf("%d matching documents in %v\n", len(docs), time.Since(start).Round(time.Microsecond))
	const maxShown = 20
	for i, d := range docs {
		if i == maxShown {
			fmt.Printf("... and %d more\n", len(docs)-maxShown)
			break
		}
		fmt.Printf("doc %d\n", d)
	}
	return nil
}
