// Command lint is the engine's invariant linter: a multichecker that runs
// the internal/analysis suite — lockorder, snapshotsafe, ioboundary,
// metricsname — over the module and exits non-zero on any finding.
//
//	go run ./cmd/lint ./...
//
// Findings print as file:line:col: message [analyzer]. A finding is
// suppressed only by a justified directive on its line:
//
//	//nolint:lockorder // <why the contract does not apply here>
//
// An unjustified directive is itself a finding. The contracts the suite
// enforces are defined once, in internal/analysis/contracts, and documented
// in DESIGN.md's "Concurrency contracts" section.
package main

import (
	"fmt"
	"os"

	"dualindex/internal/analysis/framework"
	"dualindex/internal/analysis/ioboundary"
	"dualindex/internal/analysis/lockorder"
	"dualindex/internal/analysis/metricsname"
	"dualindex/internal/analysis/snapshotsafe"
)

func main() {
	patterns := os.Args[1:]
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	analyzers := []*framework.Analyzer{
		lockorder.Analyzer,
		snapshotsafe.Analyzer,
		ioboundary.Analyzer,
		metricsname.Analyzer,
	}
	pkgs, err := framework.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lint:", err)
		os.Exit(2)
	}
	findings := 0
	for _, pkg := range pkgs {
		diags, err := framework.Run(pkg, analyzers)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lint:", err)
			os.Exit(2)
		}
		for _, d := range diags {
			fmt.Printf("%s: %s [%s]\n", pkg.Fset.Position(d.Pos), d.Message, d.Analyzer)
			findings++
		}
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "lint: %d finding(s)\n", findings)
		os.Exit(1)
	}
}
