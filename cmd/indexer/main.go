// Command indexer incrementally builds a dual-structure index from a corpus
// directory produced by cmd/newsgen: each day-*.txt file is one batch
// update, applied in place and checkpointed, exactly the paper's update
// protocol. Interrupt it at any point and rerun: it resumes from the last
// completed batch.
//
// Usage:
//
//	indexer -corpus corpus/ -index idx/ -policy balanced
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"path/filepath"
	"slices"
	"strings"
	"time"

	"dualindex"
	"dualindex/internal/obshttp"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("indexer: ")
	var (
		corpusDir = flag.String("corpus", "corpus", "corpus directory (day-*.txt files)")
		indexDir  = flag.String("index", "idx", "index directory")
		policy    = flag.String("policy", "balanced", "fast-update | balanced | fast-query | extents")
		buckets   = flag.Int("buckets", 256, "number of buckets")
		bsize     = flag.Int("bucketsize", 8192, "bucket size in word+posting units")
		shards    = flag.Int("shards", 0, "index shards for a fresh index (0 adopts an existing index's manifest)")
		routing   = flag.String("routing", "", "document routing for a fresh index: hash | range | round-robin (empty adopts the manifest, hash for a fresh index)")
		backend   = flag.String("backend", "", "block-store backend: file (empty adopts the manifest; file is the only persistent backend)")
		codec     = flag.String("codec", "", "long-list block codec for a fresh index: raw | varint | golomb (empty adopts the manifest, raw for a fresh index)")
		mmapReads = flag.Bool("mmap", false, "serve file-backend reads through a shared mmap where supported")
		keepDocs  = flag.Bool("keepdocs", false, "keep document text in the index (required for -reshard and positional queries)")
		live      = flag.Bool("live", false, "serve unflushed documents from the read-optimized live tier (Options.LiveSearch; runtime-only, not recorded in the index)")
		reshard   = flag.Int("reshard", 0, "reshard the existing index to this many shards and exit (requires an index built with -keepdocs)")
		check     = flag.Bool("check", true, "run the consistency check after the build")
		metrics   = flag.String("metrics", "", "serve /metrics, /stats, /trace, /maintenance, /healthz and /debug/pprof on this address (e.g. localhost:6060); enables instrumentation")
		maintain  = flag.Duration("maintain", 0, "run the background maintenance controller at this interval (e.g. 5s); 0 disables it")
	)
	flag.Parse()
	if *reshard > 0 {
		if err := runReshard(*indexDir, *reshard); err != nil {
			log.Fatal(err)
		}
		return
	}
	storage := storageOpts{backend: *backend, codec: *codec, mmap: *mmapReads}
	if err := run(*corpusDir, *indexDir, *policy, *buckets, *bsize, *shards, *routing, storage, *keepDocs, *live, *check, *metrics, *maintain); err != nil {
		log.Fatal(err)
	}
}

// storageOpts groups the backend/codec flags on their way into Options.
type storageOpts struct {
	backend, codec string
	mmap           bool
}

// runReshard opens an existing index (adopting its manifest) and migrates it
// to n shards in place — the online resharding path, exercised offline.
func runReshard(indexDir string, n int) error {
	eng, err := dualindex.Open(dualindex.Options{Dir: indexDir, KeepDocuments: true})
	if err != nil {
		return err
	}
	defer eng.Close()
	st, err := eng.Reshard(n)
	if err != nil {
		return err
	}
	fmt.Printf("resharded %s: %d -> %d shards, %d docs migrated in %d batches (%d deleted docs swept) in %v\n",
		indexDir, st.FromShards, st.ToShards, st.Docs, st.Batches, st.Skipped,
		st.Dur.Round(time.Millisecond))
	if err := eng.CheckConsistency(); err != nil {
		return fmt.Errorf("consistency check FAILED: %w", err)
	}
	fmt.Println("consistency check passed")
	return nil
}

// serveObs starts the observability endpoint for eng on addr, in the
// background; build failures surface on the log only, since a broken metrics
// listener should not kill a running build. maintenance says whether the
// engine runs the maintenance controller — without it, /maintenance answers
// 404, the endpoint convention for disabled features.
func serveObs(eng *dualindex.Engine, addr string, maintenance bool) {
	cfg := obshttp.Config{
		Registry:    eng.Metrics(),
		Stats:       func() any { return eng.Stats() },
		ShardStats:  func() []any { return shardStatsAny(eng) },
		Tracer:      eng.Tracer(),
		SlowQueries: func() any { return eng.SlowQueries() },
		Health:      func() obshttp.HealthState { return healthState(eng) },
	}
	if maintenance {
		cfg.Maintenance = func() any { return eng.Maintenance() }
	}
	go func() {
		if err := http.ListenAndServe(addr, obshttp.New(cfg)); err != nil {
			log.Printf("metrics endpoint: %v", err)
		}
	}()
}

// shardStatsAny and healthState adapt the engine's typed answers to the
// handler's generic config.
func shardStatsAny(eng *dualindex.Engine) []any {
	sts := eng.ShardStats()
	out := make([]any, len(sts))
	for i, st := range sts {
		out[i] = st
	}
	return out
}

func healthState(eng *dualindex.Engine) obshttp.HealthState {
	h := eng.Health()
	return obshttp.HealthState{Healthy: h.Healthy, Ready: h.Ready, Reasons: h.Reasons}
}

func policyByName(name string) (dualindex.Policy, error) {
	switch name {
	case "fast-update":
		return dualindex.PolicyFastUpdate, nil
	case "balanced":
		return dualindex.PolicyBalanced, nil
	case "fast-query":
		return dualindex.PolicyFastQuery, nil
	case "extents":
		return dualindex.PolicyExtents, nil
	}
	return dualindex.Policy{}, fmt.Errorf("unknown policy %q", name)
}

func run(corpusDir, indexDir, policyName string, buckets, bucketSize, shards int, routing string, storage storageOpts, keepDocs, live, check bool, metricsAddr string, maintainEvery time.Duration) error {
	pol, err := policyByName(policyName)
	if err != nil {
		return err
	}
	days, err := filepath.Glob(filepath.Join(corpusDir, "day-*.txt"))
	if err != nil {
		return err
	}
	if len(days) == 0 {
		return fmt.Errorf("no day-*.txt files in %s (run cmd/newsgen first)", corpusDir)
	}
	slices.Sort(days)

	opts := dualindex.Options{
		Dir:           indexDir,
		Shards:        shards,
		Routing:       routing,
		Backend:       storage.backend,
		Codec:         storage.codec,
		MmapReads:     storage.mmap,
		KeepDocuments: keepDocs,
		LiveSearch:    live,
		Policy:        &pol,
		Buckets:       buckets,
		BucketSize:    bucketSize,
	}
	if metricsAddr != "" {
		opts.Metrics = true
		opts.TraceBuffer = 4096
	}
	if maintainEvery > 0 {
		opts.Maintenance = &dualindex.MaintenanceOptions{Interval: maintainEvery}
	}
	eng, err := dualindex.Open(opts)
	if err != nil {
		return err
	}
	defer eng.Close()
	if metricsAddr != "" {
		serveObs(eng, metricsAddr, maintainEvery > 0)
	}

	// Resume: skip the batches already applied.
	done := eng.Stats().Batches
	if done > 0 {
		fmt.Printf("resuming after %d completed batches\n", done)
	}
	if done > len(days) {
		done = len(days)
	}
	for _, day := range days[done:] {
		start := time.Now()
		docs, err := loadDay(day)
		if err != nil {
			return err
		}
		for _, d := range docs {
			eng.AddDocument(d)
		}
		st, err := eng.FlushBatch()
		if err != nil {
			return err
		}
		fmt.Printf("%s: %5d docs %7d postings %4d evictions  r=%6d w=%6d  %v\n",
			filepath.Base(day), st.Docs, st.Postings, st.Evictions,
			st.ReadOps, st.WriteOps, time.Since(start).Round(time.Millisecond))
	}
	s := eng.Stats()
	fmt.Printf("\nindex: %d docs, %d words, %d long lists, %d bucket words\n",
		s.Docs, s.Words, s.LongLists, s.BucketWords)
	fmt.Printf("long-list utilization %.2f, avg reads per long list %.2f\n",
		s.Utilization, s.AvgReadsPerList)
	fmt.Printf("i/o: %d read ops (%d blocks), %d write ops (%d blocks)\n",
		s.ReadOps, s.ReadBlocks, s.WriteOps, s.WriteBlocks)
	if s.CodecEncodedBytes > 0 {
		fmt.Printf("codec: %d raw bytes packed into %d (compression ratio %.2f)\n",
			s.CodecRawBytes, s.CodecEncodedBytes, s.CompressionRatio)
	}
	if check {
		if err := eng.CheckConsistency(); err != nil {
			return fmt.Errorf("consistency check FAILED: %w", err)
		}
		fmt.Println("consistency check passed")
	}
	return nil
}

func loadDay(path string) ([]string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var docs []string
	var cur strings.Builder
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if line == "%%" {
			if cur.Len() > 0 {
				docs = append(docs, cur.String())
				cur.Reset()
			}
			continue
		}
		cur.WriteString(line)
		cur.WriteString("\n")
	}
	if cur.Len() > 0 {
		docs = append(docs, cur.String())
	}
	return docs, sc.Err()
}
