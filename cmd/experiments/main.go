// Command experiments regenerates every table and figure of the paper's
// evaluation section from the synthetic corpus and the simulated disk
// subsystem, printing paper-style rows and series.
//
// Usage:
//
//	experiments -run all
//	experiments -run table1,figure8,figure13 -scale 0.5
//
// Paper artifacts: table1 table3 figure1 figure7 figure8 figure9 figure10
// table5 table6 figure11 figure12 figure13 figure14. Extensions and
// ablations: ext-disks ext-scale ext-buddy ext-adaptive ext-rebalance
// ext-queries ext-compression ext-querytime ext-rebuild. Use -list for
// descriptions, -out DIR to also write one file per artifact.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"strings"
	"time"

	"dualindex/internal/corpus"
	"dualindex/internal/disk"
	"dualindex/internal/experiments"
	"dualindex/internal/longlist"
)

type artifact struct {
	name string
	desc string
	run  func(*experiments.Env) error
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")
	var (
		runList = flag.String("run", "all", "comma-separated artifact list, or 'all'")
		scale   = flag.Float64("scale", 1.0, "corpus scale factor")
		list    = flag.Bool("list", false, "list artifacts and exit")
		outDir  = flag.String("out", "", "also write each artifact's output to <out>/<name>.txt")
	)
	flag.Parse()

	arts := artifacts()
	if *list {
		for _, a := range arts {
			fmt.Printf("%-10s %s\n", a.name, a.desc)
		}
		return
	}
	want := map[string]bool{}
	all := *runList == "all"
	for _, n := range strings.Split(*runList, ",") {
		want[strings.TrimSpace(n)] = true
	}
	params := experiments.DefaultParams()
	if *scale != 1.0 {
		params = params.Scaled(*scale)
	}
	fmt.Printf("# Parameters: days=%d docs/day≈%d buckets=%d bucketsize=%d blockposting=%d disks=%d\n\n",
		params.Corpus.Days, params.Corpus.DocsPerDay, params.Buckets, params.BucketSize,
		params.BlockPosting, params.Geometry.NumDisks)
	start := time.Now()
	env, err := experiments.NewEnv(params)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("# corpus + compute-buckets: %v\n\n", time.Since(start).Round(time.Millisecond))
	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			log.Fatal(err)
		}
	}
	stdout := os.Stdout
	for _, a := range arts {
		if !all && !want[a.name] {
			continue
		}
		t0 := time.Now()
		if *outDir != "" {
			// Tee the artifact's output into its own file.
			f, err := os.Create(filepath.Join(*outDir, a.name+".txt"))
			if err != nil {
				log.Fatal(err)
			}
			r, w, err := os.Pipe()
			if err != nil {
				log.Fatal(err)
			}
			os.Stdout = w
			// The copier touches only its captured locals (stdout, f, r);
			// os.Stdout is read and written on this goroutine alone, and
			// <-done orders the copy's completion before f.Close.
			done := make(chan error, 1)
			go func() {
				_, cerr := io.Copy(io.MultiWriter(stdout, f), r)
				done <- cerr
			}()
			err = a.run(env)
			w.Close()
			cerr := <-done
			os.Stdout = stdout
			f.Close()
			if err != nil {
				log.Fatalf("%s: %v", a.name, err)
			}
			if cerr != nil {
				log.Fatalf("%s: tee: %v", a.name, cerr)
			}
		} else if err := a.run(env); err != nil {
			log.Fatalf("%s: %v", a.name, err)
		}
		fmt.Printf("# %s completed in %v\n\n", a.name, time.Since(t0).Round(time.Millisecond))
	}
}

func artifacts() []artifact {
	return []artifact{
		{"table1", "News database statistics", runTable1},
		{"table3", "sample of a batch update", runTable3},
		{"figure1", "bucket animation (100-bucket system, bucket 3)", runFigure1},
		{"figure7", "fraction of words per update in each category", runFigure7},
		{"figure8", "cumulative I/O operations per policy", runFigure8},
		{"figure9", "long-list utilization per policy", runFigure9},
		{"figure10", "average read operations per long list", runFigure10},
		{"table5", "allocation strategies, new style", runTable5},
		{"table6", "allocation strategies, whole style", runTable6},
		{"figure11", "utilization vs proportional constant", runFigure11},
		{"figure12", "in-place updates vs proportional constant", runFigure12},
		{"figure13", "cumulative build time (disk model)", runFigure13},
		{"figure14", "time per update (disk model)", runFigure14},
		{"ext-disks", "extension: disk count and speed sweep", runExtDisks},
		{"ext-scale", "extension: database scale-up", runExtScale},
		{"ext-buddy", "ablation: first-fit vs buddy-system allocation", runExtBuddy},
		{"ext-adaptive", "ablation: adaptive vs proportional reserved space", runExtAdaptive},
		{"ext-rebalance", "extension: periodic bucket-space rebalancing", runExtRebalance},
		{"ext-queries", "extension: boolean vs vector query workload cost", runExtQueries},
		{"ext-compression", "extension: posting codecs and implied BlockPosting", runExtCompression},
		{"ext-querytime", "extension: modelled list-read latency and disk striping", runExtQueryTime},
		{"ext-rebuild", "baseline: periodic full reconstruction vs in-place updates", runExtRebuild},
	}
}

func runExtRebuild(env *experiments.Env) error {
	fmt.Println("## Baseline — full reconstruction (the traditional regime) vs in-place updates")
	rows, err := env.Motivation()
	if err != nil {
		return err
	}
	fmt.Printf("%-38s %12s %12s %12s %8s\n", "regime", "total time", "staleness", "reads/list", "util")
	for _, r := range rows {
		fmt.Printf("%-38s %11.1fs %9d day(s) %12.2f %8.2f\n",
			r.Regime, r.Total.Seconds(), r.StalenessBatches, r.ReadsPerList, r.Utilization)
	}
	return nil
}

func runExtQueryTime(env *experiments.Env) error {
	fmt.Println("## Extension — modelled long-list read latency (parallel disk array)")
	rows, err := env.QueryTimeStudy()
	if err != nil {
		return err
	}
	fmt.Printf("%-26s %12s %14s %14s\n", "policy", "avg latency", "top-10 latency", "disks/list")
	for _, r := range rows {
		fmt.Printf("%-26s %11.1fms %13.1fms %14.2f\n",
			r.Policy, float64(r.AvgLatency.Microseconds())/1000,
			float64(r.Top10Latency.Microseconds())/1000, r.AvgDisksTouched)
	}
	return nil
}

func runExtCompression(env *experiments.Env) error {
	fmt.Println("## Extension — posting compression and the implied BlockPosting parameter")
	rows, err := env.CompressionStudy()
	if err != nil {
		return err
	}
	fmt.Printf("%-14s %14s %16s %22s\n", "codec", "total bytes", "bytes/posting", "implied BlockPosting")
	for _, r := range rows {
		fmt.Printf("%-14s %14d %16.2f %22d\n", r.Codec, r.Bytes, r.BytesPerPosting, r.ImpliedBlockPosting)
	}
	return nil
}

func runExtRebalance(env *experiments.Env) error {
	fmt.Println("## Extension — periodic bucket rebalancing (grow bucket space at 85% load)")
	pts, err := env.ExtensionRebalance(0.85)
	if err != nil {
		return err
	}
	fmt.Printf("%-12s %10s %12s %10s %10s %10s\n",
		"rebalanced", "longlists", "bucketwords", "load", "ops", "reads")
	for _, p := range pts {
		fmt.Printf("%-12v %10d %12d %10.2f %10d %10.2f\n",
			p.Rebalanced, p.LongLists, p.BucketWords, p.LoadFactor, p.Ops, p.AvgReadsList)
	}
	return nil
}

func runExtBuddy(env *experiments.Env) error {
	fmt.Println("## Ablation — first-fit (paper) vs buddy system (related work)")
	rows, err := env.AblationAllocators()
	if err != nil {
		return err
	}
	fmt.Printf("%-26s %-10s %10s %10s %10s %10s\n",
		"policy", "allocator", "ops", "time", "list util", "disk util")
	for _, r := range rows {
		fmt.Printf("%-26s %-10s %10d %9.1fs %10.3f %10.3f\n",
			r.Policy, r.Allocator, r.Ops, r.Time.Seconds(), r.ListUtil, r.DiskUtil)
	}
	return nil
}

func runExtAdaptive(env *experiments.Env) error {
	fmt.Println("## Ablation — adaptive reserved space vs the paper's proportional constants")
	rows, err := env.AblationAdaptive()
	if err != nil {
		return err
	}
	fmt.Printf("%-26s %10s %8s %8s %10s %6s\n", "policy", "ops", "util", "reads", "in-place", "frac")
	for _, r := range rows {
		fmt.Printf("%-26s %10d %8.3f %8.2f %10d %6.2f\n",
			r.Policy, r.Ops, r.Util, r.Reads, r.InPlace, r.Frac)
	}
	return nil
}

func runTable1(env *experiments.Env) error {
	fmt.Println("## Table 1 — statistics for the (synthetic) News text database")
	fmt.Print(env.Table1())
	return nil
}

func runTable3(env *experiments.Env) error {
	fmt.Println("## Table 3 — part of the first batch update (word, doc-occurrences)")
	for _, wc := range env.Table3(12) {
		fmt.Printf("%s %d\n", corpus.WordString(wc.Word), wc.Count)
	}
	return nil
}

func runFigure1(env *experiments.Env) error {
	fmt.Println("## Figure 1 — animation of bucket 3 (words, postings, words+postings per change)")
	samples, err := env.Figure1(3, 2000)
	if err != nil {
		return err
	}
	fmt.Printf("%-8s %8s %10s %10s\n", "change", "words", "postings", "w+p")
	for i, s := range samples {
		if i%50 == 0 || i == len(samples)-1 {
			fmt.Printf("%-8d %8d %10d %10d\n", i, s.Words, s.Postings, s.Words+s.Postings)
		}
	}
	return nil
}

func runFigure7(env *experiments.Env) error {
	fmt.Println("## Figure 7 — fraction of words per update in each category")
	stats := env.Figure7()
	fmt.Printf("%-8s %10s %14s %12s\n", "update", "new words", "bucket words", "long words")
	for i, s := range stats {
		nf, bf, lf := s.Fractions()
		fmt.Printf("%-8d %10.3f %14.3f %12.3f\n", i+1, nf, bf, lf)
	}
	return nil
}

func runFigure8(env *experiments.Env) error {
	c, err := env.Figure8()
	if err != nil {
		return err
	}
	fmt.Print(experiments.RenderCurves(
		"## Figure 8 — cumulative I/O operations needed to build the final index",
		c.Labels, c.Series, "%14.0f"))
	return nil
}

func runFigure9(env *experiments.Env) error {
	c, err := env.Figure9()
	if err != nil {
		return err
	}
	fmt.Print(experiments.RenderCurves(
		"## Figure 9 — long-list (internal) disk utilization",
		c.Labels, c.Series, "%14.3f"))
	return nil
}

func runFigure10(env *experiments.Env) error {
	c, err := env.Figure10()
	if err != nil {
		return err
	}
	fmt.Print(experiments.RenderCurves(
		"## Figure 10 — average read operations per long list",
		c.Labels, c.Series, "%14.2f"))
	return nil
}

func runTable5(env *experiments.Env) error {
	rows, err := env.Table5()
	if err != nil {
		return err
	}
	fmt.Print(experiments.RenderAllocTable(
		"## Table 5 — allocation strategies for the new style (final index)", rows, true))
	return nil
}

func runTable6(env *experiments.Env) error {
	rows, err := env.Table6()
	if err != nil {
		return err
	}
	fmt.Print(experiments.RenderAllocTable(
		"## Table 6 — allocation strategies for the whole style (final index)", rows, false))
	return nil
}

func runFigure11(env *experiments.Env) error {
	return runSweep(env, "## Figure 11 — utilization vs proportional constant k", func(p experiments.SweepPoint) float64 {
		return p.Utilization
	}, "%10.3f")
}

func runFigure12(env *experiments.Env) error {
	return runSweep(env, "## Figure 12 — cumulative in-place updates vs proportional constant k", func(p experiments.SweepPoint) float64 {
		return float64(p.InPlace)
	}, "%10.0f")
}

func runSweep(env *experiments.Env, title string, metric func(experiments.SweepPoint) float64, format string) error {
	ks := experiments.DefaultSweepKs()
	newPts, err := env.ProportionalSweep(longlist.StyleNew, ks)
	if err != nil {
		return err
	}
	wholePts, err := env.ProportionalSweep(longlist.StyleWhole, ks)
	if err != nil {
		return err
	}
	fill, err := env.FillReference()
	if err != nil {
		return err
	}
	fmt.Println(title)
	fmt.Printf("%-6s %10s %10s %10s\n", "k", "new", "whole", "fill(e=2)")
	for i, k := range ks {
		fmt.Printf("%-6.2f "+format+" "+format+" "+format+"\n",
			k, metric(newPts[i]), metric(wholePts[i]), metric(fill))
	}
	return nil
}

func runFigure13(env *experiments.Env) error {
	tc, err := env.Figures13And14()
	if err != nil {
		return err
	}
	fmt.Print(experiments.RenderCurves(
		"## Figure 13 — cumulative time (seconds) to build the final index",
		tc.Labels, experiments.DurationsToSeconds(tc.Cumulative), "%14.1f"))
	return nil
}

func runFigure14(env *experiments.Env) error {
	tc, err := env.Figures13And14()
	if err != nil {
		return err
	}
	fmt.Print(experiments.RenderCurves(
		"## Figure 14 — time (seconds) per update",
		tc.Labels, experiments.DurationsToSeconds(tc.PerUpdate), "%14.1f"))
	return nil
}

func runExtDisks(env *experiments.Env) error {
	fmt.Println("## Extension — build time vs number of disks and disk generation (new z prop 2.0)")
	pts, err := env.ExtensionDiskSweep(
		[]int{1, 2, 4, 8},
		[]disk.Profile{disk.Seagate1993(), disk.FastSCSI1995(), disk.Optical1993()})
	if err != nil {
		return err
	}
	fmt.Printf("%-6s %-24s %12s\n", "disks", "profile", "total")
	for _, p := range pts {
		fmt.Printf("%-6d %-24s %12.1fs\n", p.Disks, p.Profile, p.Total.Seconds())
	}
	return nil
}

func runExtScale(env *experiments.Env) error {
	fmt.Println("## Extension — database scale-up (fixed index parameters, new z prop 2.0)")
	pts, err := experiments.ExtensionScaleSweep(env.Params, []float64{0.5, 1.0, 2.0}, longlist.NewRecommended())
	if err != nil {
		return err
	}
	fmt.Printf("%-6s %12s %10s %10s %10s %8s %8s\n",
		"scale", "postings", "ops", "time", "longlists", "util", "reads")
	for _, p := range pts {
		fmt.Printf("%-6.2f %12d %10d %9.1fs %10d %8.3f %8.2f\n",
			p.Scale, p.Postings, p.Ops, p.Total.Seconds(), p.LongLists, p.Utilization, p.AvgReadsList)
	}
	return nil
}

func runExtQueries(env *experiments.Env) error {
	fmt.Println("## Extension — modelled query cost: boolean vs vector workloads (§5.2.1)")
	rows, err := env.QueryWorkloads(200)
	if err != nil {
		return err
	}
	fmt.Printf("%-26s %14s %16s %14s\n",
		"policy", "boolean reads", "bucket-hit frac", "vector reads")
	for _, r := range rows {
		fmt.Printf("%-26s %14.2f %16.2f %14.1f\n",
			r.Policy, r.BooleanReads, r.BooleanBucketHits, r.VectorReads)
	}
	return nil
}
