// Command newsgen generates a synthetic News text-document database with
// the statistical shape of the corpus in the paper: daily batches of
// Zipf-distributed articles with a weekly volume pattern. Each day becomes
// one file of documents separated by "%%" lines, consumable by cmd/indexer.
//
// Usage:
//
//	newsgen -out corpus/ -days 73 -docs 600 -seed 1
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"dualindex/internal/corpus"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("newsgen: ")
	var (
		out   = flag.String("out", "corpus", "output directory")
		days  = flag.Int("days", 73, "number of daily batches")
		docs  = flag.Int("docs", 600, "mean documents per weekday")
		words = flag.Int("words", 80, "mean distinct words per document")
		seed  = flag.Int64("seed", 1, "random seed")
		stats = flag.Bool("stats", true, "print Table 1 statistics")
	)
	flag.Parse()

	cfg := corpus.DefaultConfig()
	cfg.Days = *days
	cfg.DocsPerDay = *docs
	cfg.WordsPerDoc = *words
	cfg.Seed = *seed

	if err := run(cfg, *out, *stats); err != nil {
		log.Fatal(err)
	}
}

func run(cfg corpus.Config, out string, printStats bool) error {
	if err := os.MkdirAll(out, 0o755); err != nil {
		return err
	}
	gen, err := corpus.NewGenerator(cfg)
	if err != nil {
		return err
	}
	var all []*corpus.Batch
	for b := gen.Next(); b != nil; b = gen.Next() {
		if err := writeDay(out, b); err != nil {
			return err
		}
		all = append(all, b)
		fmt.Printf("day %2d: %5d documents\n", b.Day, len(b.Docs))
	}
	if printStats {
		fmt.Println()
		fmt.Print(corpus.ComputeStats(all))
	}
	return nil
}

func writeDay(dir string, b *corpus.Batch) error {
	f, err := os.Create(filepath.Join(dir, fmt.Sprintf("day-%02d.txt", b.Day)))
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	for _, d := range b.Docs {
		if _, err := w.WriteString(corpus.DocText(d, b.Day)); err != nil {
			f.Close()
			return err
		}
		if _, err := w.WriteString("%%\n"); err != nil {
			f.Close()
			return err
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
