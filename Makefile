# Convenience targets; `make check` is the gate a change must pass.

.PHONY: check build test race bench

check:
	./scripts/check.sh

build:
	go build ./...

test:
	go test ./...

race:
	go test -race ./...

# The parallel-path benchmarks (flush, query fetch, block cache).
bench:
	go test -bench 'Parallel|BlockCache' -run '^$$' .
