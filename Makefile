# Convenience targets; `make check` is the gate a change must pass.

.PHONY: check lint build test race bench bench-shard bench-observe bench-reshard bench-compress bench-query bench-live

check:
	./scripts/check.sh

# The invariant linter: lockorder, snapshotsafe, ioboundary, metricsname
# over the whole module (see internal/analysis and DESIGN.md's
# "Concurrency contracts"). Exits non-zero on any finding.
lint:
	go run ./cmd/lint ./...

build:
	go build ./...

test:
	go test ./...

race:
	go test -race ./...

# The parallel-path benchmarks (flush, query fetch, block cache).
bench:
	go test -bench 'Parallel|BlockCache' -run '^$$' .

# Shard-scaling benchmarks: ingest and query throughput at 1, 2 and 4
# shards, written to BENCH_shard.json.
bench-shard:
	go test -run '^TestShardBenchReport$$' -count=1 -v .

# Observability overhead: flush and query time with instrumentation off vs
# fully on (metrics + tracing + slow-query log), written to
# BENCH_observe.json. Target: enabled flush within 5% of disabled.
bench-observe:
	go test -run '^TestObserveBenchReport$$' -count=1 -v .

# Online-resharding throughput: document migration rate for in-memory and
# on-disk reshards, written to BENCH_reshard.json.
bench-reshard:
	go test -run '^TestReshardBenchReport$$' -count=1 -v .

# Compression matrix: flush and query time plus blocks moved for every
# backend × codec cell of {sim, file} × {raw, varint, golomb}, written to
# BENCH_compress.json. Gate: compressed cells move fewer blocks than raw.
bench-compress:
	go test -run '^TestCompressBenchReport$$' -count=1 -v .

# Live-tier latency: add-to-visible time (AddDocument → query returns the
# document) with the live tier vs a flush per document, and the query
# workload's cost with LiveSearch on vs off, written to BENCH_live.json.
# Gates: visibility in microseconds, clearly cheaper than flushing, no
# query-time regression.
bench-live:
	go test -run '^TestLiveBenchReport$$' -count=1 -v .

# Query-pipeline overhead: boolean and vector latency through the
# parse→plan→execute pipeline vs the direct legacy evaluators, plus the
# unified entry point and BM25, written to BENCH_query.json. Gate: the
# pipeline adds no measurable overhead to the legacy paths.
bench-query:
	go test -run '^TestQueryBenchReport$$' -count=1 -v .
