# Convenience targets; `make check` is the gate a change must pass.

.PHONY: check build test race bench bench-shard

check:
	./scripts/check.sh

build:
	go build ./...

test:
	go test ./...

race:
	go test -race ./...

# The parallel-path benchmarks (flush, query fetch, block cache).
bench:
	go test -bench 'Parallel|BlockCache' -run '^$$' .

# Shard-scaling benchmarks: ingest and query throughput at 1, 2 and 4
# shards, written to BENCH_shard.json.
bench-shard:
	go test -run '^TestShardBenchReport$$' -count=1 -v .
