package dualindex

import (
	"errors"
	"fmt"
	"path/filepath"
	"slices"
	"sync"

	"dualindex/internal/cache"
	"dualindex/internal/core"
	"dualindex/internal/disk"
	"dualindex/internal/docstore"
	"dualindex/internal/lexer"
	"dualindex/internal/longlist"
	"dualindex/internal/maintain"
	"dualindex/internal/postings"
	"dualindex/internal/query"
	"dualindex/internal/vocab"
)

// shard is one independent partition of the engine: a complete dual-structure
// index with its own disk array (or store), bucket space, long-list
// directory, vocabulary, pending batch and flush lock. It is exactly the
// pre-sharding Engine with document-identifier assignment lifted out: the
// Engine assigns identifiers globally and routes each document to one shard,
// so a single-shard engine behaves — down to the simulated I/O trace —
// like the unsharded engine did.
//
// A shard is safe for concurrent use: searches proceed under a read lock and
// run concurrently with each other and with document additions' brief write
// lock. A batch flush holds the write lock only at its boundaries — to
// detach the pending batch and publish a snapshot, and to retire the
// snapshot when the batch is applied — so searches keep flowing while the
// index is updated in place, the paper's continuous 7×24 operational
// setting. Whole-shard maintenance (delete, sweep, rebalance, close)
// serialises with flushes on a second mutex.
type shard struct {
	mu    sync.RWMutex
	opts  Options
	dir   string // this shard's directory; empty for in-memory shards
	index *core.Index
	vocab *vocab.Vocab
	store disk.BlockStore
	cache *cache.Store // non-nil iff Options.CacheBlocks > 0
	obs   *shardObs    // nil unless the engine is instrumented (observe.go)

	// flushMu serialises the whole-shard mutators: flushBatch, delete,
	// sweep, rebalanceBuckets and close. Lock order: flushMu before mu.
	flushMu sync.Mutex

	// While a flush is applying its batch, snap holds the pre-flush index
	// state and snapBatch the detached batch; searches read them instead of
	// the live index (guarded by mu: written under Lock, read under RLock).
	snap      *core.Snapshot
	snapBatch map[postings.WordID][]postings.DocID

	// The in-memory inverted index of documents awaiting a flush; it is
	// searched together with the on-disk index, as the paper prescribes.
	// pending is the write-side bag form the flush consumes; live is the
	// read-optimized form (sorted runs + positional tokens) queries consult
	// when Options.LiveSearch is on, and snapLive its detached counterpart
	// while a flush is applying the batch (paired with snap/snapBatch,
	// following the same publish/release protocol).
	pending         map[postings.WordID][]postings.DocID
	live            *liveTier // nil unless Options.LiveSearch
	snapLive        *liveTier // non-nil only mid-flush, and only with live
	pendingDocs     int
	pendingPostings int64

	// lastDoc is the largest document identifier this shard has seen, used
	// by Open to resume the engine-wide identifier sequence.
	lastDoc postings.DocID

	// docsIndexed counts the documents applied to this shard's on-disk
	// index: flushes add, sweeps subtract what they reclaim. It is the
	// denominator of the dead-posting fraction the maintenance controller
	// watches. Reopening without a document store loses the count (the
	// index stores postings, not documents), which deadFraction treats as
	// "unknown, err toward sweeping".
	docsIndexed int

	docs   docstore.Store // nil unless Options.KeepDocuments
	docErr error          // first deferred document-store failure
}

// openShard creates one shard, resuming from dir's last checkpoint when one
// exists. dir is the shard's own directory (Options.Dir itself for a
// single-shard engine, Dir/shard-<i> otherwise), or empty for in-memory.
func openShard(opts Options, dir string) (*shard, error) {
	pol, err := opts.Policy.internal()
	if err != nil {
		return nil, err
	}
	var store disk.BlockStore
	resume := false
	if dir == "" {
		if opts.newStore != nil {
			store = opts.newStore(opts.NumDisks, opts.BlockSize)
		} else {
			store = disk.NewMemStore(opts.NumDisks, opts.BlockSize)
		}
	} else {
		resume = shardResumes(dir)
		fs, err := openFileStore(dir, opts, resume)
		if err != nil {
			return nil, err
		}
		store = fs
	}
	var blockCache *cache.Store
	if opts.CacheBlocks > 0 {
		blockCache = cache.New(store, opts.BlockSize, opts.CacheBlocks)
		store = blockCache
	}
	codec, err := postings.ParseCodec(opts.Codec)
	if err != nil {
		store.Close()
		return nil, err
	}
	cfg := core.Config{
		Buckets:      opts.Buckets,
		BucketSize:   opts.BucketSize,
		BlockPosting: int64(opts.BlockSize / longlist.PostingBytes),
		Geometry: disk.Geometry{
			NumDisks:      opts.NumDisks,
			BlocksPerDisk: opts.BlocksPerDisk,
			BlockSize:     opts.BlockSize,
		},
		Policy:       pol,
		Store:        store,
		Codec:        codec,
		FlushWorkers: opts.Workers,
	}
	s := &shard{
		opts:    opts,
		dir:     dir,
		store:   store,
		cache:   blockCache,
		vocab:   vocab.New(),
		pending: make(map[postings.WordID][]postings.DocID),
	}
	if opts.LiveSearch {
		s.live = newLiveTier()
	}
	if resume {
		s.index, err = core.Open(cfg)
		if errors.Is(err, core.ErrNoCheckpoint) {
			// The disk files exist but no batch was ever flushed — a shard
			// whose every batch so far was empty. Start it fresh; any
			// documents in its log are still recovered below.
			s.index, err = core.New(cfg)
		}
		if err == nil {
			err = s.loadVocab()
		}
	} else {
		s.index, err = core.New(cfg)
	}
	if err != nil {
		store.Close()
		return nil, err
	}
	if opts.KeepDocuments {
		if dir == "" {
			s.docs = docstore.NewMem()
		} else {
			ds, err := docstore.OpenFile(filepath.Join(dir, "docs.log"))
			if err != nil {
				store.Close()
				return nil, err
			}
			s.docs = ds
		}
	}
	if resume {
		s.lastDoc = s.maxIndexedDoc()
		if err := s.recoverPendingDocs(); err != nil {
			s.close()
			return nil, err
		}
	}
	return s, nil
}

// recoverPendingDocs re-ingests documents that reached the document store
// after the index's last checkpoint: the doc log is written at AddDocument
// time, so a crash between batches loses no stored document — it reappears
// in the pending batch, ready for the next flush.
func (s *shard) recoverPendingDocs() error {
	w, ok := s.docs.(docstore.Walker)
	if !ok || s.docs == nil {
		return nil
	}
	indexed := s.lastDoc
	return w.ForEach(func(id postings.DocID, text string) error {
		if id <= indexed {
			s.docsIndexed++ // already in the on-disk index: reseed the count
			return nil
		}
		s.indexPendingLocked(id, text)
		return nil
	})
}

// maxIndexedDoc scans the index for the largest document identifier so new
// documents continue the sequence after a resume.
func (s *shard) maxIndexedDoc() postings.DocID {
	var max postings.DocID
	s.index.Buckets().ForEachWord(func(w postings.WordID, _ int) {
		if l := s.index.Buckets().List(w); l != nil && l.MaxDoc() > max {
			max = l.MaxDoc()
		}
	})
	for _, w := range s.index.Directory().Words() {
		if l, err := s.index.GetList(w); err == nil && l.MaxDoc() > max {
			max = l.MaxDoc()
		}
	}
	return max
}

// addDocumentLocked tokenizes text and appends it to the shard's pending
// batch (and live tier, when enabled). The engine has already assigned the
// identifier, routed the document here, and acquired s.mu (see
// Engine.AddDocument for why the two locks overlap).
func (s *shard) addDocumentLocked(doc postings.DocID, text string) {
	s.indexPendingLocked(doc, text)
	if s.docs != nil && s.docErr == nil {
		s.docErr = s.docs.Put(doc, text)
	}
}

// indexPendingLocked indexes one document into the shard's in-memory
// structures: the pending bag map the next flush consumes, and — under
// Options.LiveSearch — the live tier's sorted runs and positional tokens,
// which is what makes the document searchable the moment this returns.
// Called with s.mu held (or on a shard not yet shared, during recovery).
func (s *shard) indexPendingLocked(doc postings.DocID, text string) {
	words := lexer.Tokenize(text, s.opts.Lexer)
	ids := make([]postings.WordID, len(words))
	for i, word := range words {
		ids[i] = s.vocab.GetOrAssign(word)
		s.pending[ids[i]] = append(s.pending[ids[i]], doc)
	}
	if s.live != nil {
		s.live.add(doc, ids, lexer.TokenizePositions(text, s.opts.Lexer))
	}
	s.pendingDocs++
	s.pendingPostings += int64(len(words))
	if doc > s.lastDoc {
		s.lastDoc = doc
	}
}

func (s *shard) numPending() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.pendingDocs
}

// numPendingPostings reports how many postings await a flush — the live
// tier's volume, feeding the pending_postings gauge and Stats.
func (s *shard) numPendingPostings() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.pendingPostings
}

// flushBatch applies the shard's pending batch to its on-disk index — the
// paper's incremental batch update — and checkpoints. A flush with no
// pending documents is a no-op.
//
// Searches are not blocked while the batch is applied: flushBatch detaches
// the batch and publishes a snapshot of the pre-flush index under a brief
// write lock, applies the update with no shard lock held (queries read the
// snapshot plus the detached batch, so answers are unchanged mid-flush),
// and retires the snapshot under a final brief write lock. Acquiring that
// final lock drains every search still reading the snapshot; chunks the
// batch released cannot be overwritten before the next batch's allocations
// in any case, because they return to free space only at this batch's
// checkpoint.
func (s *shard) flushBatch() (BatchStats, error) {
	s.flushMu.Lock()
	defer s.flushMu.Unlock()

	t0 := s.obs.now() // zero (no clock read) when uninstrumented
	s.mu.Lock()
	if s.docErr != nil {
		s.mu.Unlock()
		return BatchStats{}, fmt.Errorf("dualindex: document store: %w", s.docErr)
	}
	if s.pendingDocs == 0 {
		s.mu.Unlock()
		return BatchStats{}, nil
	}
	if s.docs != nil {
		if err := s.docs.Sync(); err != nil {
			s.mu.Unlock()
			return BatchStats{}, err
		}
	}
	batch, batchDocs, batchPostings := s.pending, s.pendingDocs, s.pendingPostings
	s.pending = make(map[postings.WordID][]postings.DocID)
	s.pendingDocs, s.pendingPostings = 0, 0
	s.snap = s.index.Snapshot()
	s.snapBatch = batch
	if s.live != nil {
		// Publish the live tier as the flush's detached tier and start a
		// fresh one: documents added while the batch applies land in the new
		// tier, queries read snap + snapLive + live, and answers stay equal
		// to the pre-flush (hence post-flush) ones throughout.
		s.snapLive, s.live = s.live, newLiveTier()
	}
	s.mu.Unlock()

	words := make([]postings.WordID, 0, len(batch))
	for w := range batch {
		words = append(words, w)
	}
	slices.Sort(words)
	updates := make([]core.WordUpdate, 0, len(words))
	for _, w := range words {
		list := postings.FromDocs(batch[w])
		updates = append(updates, core.WordUpdate{Word: w, Count: list.Len(), List: list})
	}
	st, err := s.index.ApplyUpdate(updates)

	s.mu.Lock()
	s.snap, s.snapBatch = nil, nil
	if err != nil {
		// Put the batch back so no documents are lost. Batch documents
		// precede anything added while the flush ran, so prepending keeps
		// every per-word list sorted; the detached live tier likewise
		// re-absorbs the fresh one.
		for w, docs := range batch {
			s.pending[w] = append(docs, s.pending[w]...)
		}
		s.pendingDocs += batchDocs
		s.pendingPostings += batchPostings
		if s.snapLive != nil {
			s.snapLive.absorb(s.live)
			s.live, s.snapLive = s.snapLive, nil
		}
		s.mu.Unlock()
		return BatchStats{}, err
	}
	// The batch is on disk: retire the detached live tier with the snapshot.
	s.snapLive = nil
	out := BatchStats{
		Docs:      batchDocs,
		Words:     st.Words,
		Postings:  st.Postings,
		Evictions: st.Evictions,
		ReadOps:   st.ReadOps,
		WriteOps:  st.WriteOps,
		Phases: FlushPhases{
			Plan:        st.PlanDur,
			LongApply:   st.LongApplyDur,
			BucketFlush: st.BucketFlushDur,
			Checkpoint:  st.CheckpointDur,
			Release:     st.ReleaseDur,
		},
	}
	s.docsIndexed += batchDocs
	var vocabErr error
	if s.dir != "" {
		vocabErr = s.saveVocab()
	}
	s.mu.Unlock()
	s.obs.observeFlush(t0, st, batchDocs)
	return out, vocabErr
}

// tiers assembles the shard's current read tiers into the one merged Source
// every query path executes against: the on-disk tier, then — mid-flush —
// the detached batch the flush is applying, then the in-memory tier of
// documents awaiting a flush. While a flush is applying its batch, the
// on-disk tier comes from the flush's published snapshot and the detached
// batch rides beside it, so mid-flush answers equal the pre-flush (and
// hence the post-flush) ones; all tiers share one deletion view for the
// same reason. Called under s.mu.RLock, and the returned source is read
// under that same RLock, so the tier set cannot change beneath a query.
func (s *shard) tiers() *query.TieredSource {
	if s.snap != nil {
		isDeleted := s.snap.IsDeleted
		return query.NewTieredSource(
			diskTier{s: s, get: s.snap.GetList},
			memTier{s: s, live: s.snapLive, bags: s.snapBatch, isDeleted: isDeleted},
			memTier{s: s, live: s.live, bags: s.pending, isDeleted: isDeleted},
		)
	}
	return query.NewTieredSource(
		diskTier{s: s, get: s.index.GetList},
		memTier{s: s, live: s.live, bags: s.pending, isDeleted: s.index.IsDeleted},
	)
}

// list returns the full current list for a word string: the merge of every
// read tier (see tiers), filtered of deleted docs. Called under s.mu.RLock,
// from any number of goroutines.
func (s *shard) list(word string) (*postings.List, error) {
	return s.tiers().List(word)
}

// shardSource adapts a shard to the query package's Source interface.
type shardSource struct{ s *shard }

func (src shardSource) List(word string) (*postings.List, error) { return src.s.list(word) }

// WordsWithPrefix enumerates the shard's vocabulary through its B-tree
// dictionary, enabling truncation queries.
func (src shardSource) WordsWithPrefix(prefix string) []string {
	return src.s.vocab.WordsWithPrefix(prefix)
}

// prefetchPlan is the shared head of plan execution on this shard: reject
// plans needing stored documents when there are none, then fetch the plan's
// term lists with at most Options.Workers reads in flight. Called under
// s.mu.RLock. The returned source serves the prefetched lists from memory
// and falls through to the shard for anything else — notably the positional
// prune lists, which stream lazily so an empty candidate intersection stops
// reading early.
func (s *shard) prefetchPlan(pl *query.Plan) (*query.Prefetched, error) {
	if pl.NeedsDocs && s.docs == nil {
		return nil, fmt.Errorf("dualindex: positional queries need Options.KeepDocuments")
	}
	return query.Prefetch(pl.Fetch, s.tiers(), s.opts.Workers)
}

// execMatch runs a match-only plan against this shard and returns its
// matching documents in ascending order.
func (s *shard) execMatch(pl *query.Plan) ([]DocID, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	t0 := s.obs.now()
	src, err := s.prefetchPlan(pl)
	if err != nil {
		return nil, err
	}
	t1 := s.obs.observeFetch(t0)
	l, err := query.ExecuteMatch(pl, query.Exec{Src: src, Verify: s.verifyDocs})
	if err != nil {
		return nil, err
	}
	s.obs.observeScore(t1)
	return l.Docs(), nil
}

// execRanked runs a ranked plan against this shard and returns its local
// top k. totalDocs is the engine-wide collection size, so the idf numerator
// is global; document frequencies are shard-local (the standard
// distributed-retrieval approximation — exact for a single shard).
func (s *shard) execRanked(pl *query.Plan, totalDocs int) ([]Match, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	t0 := s.obs.now()
	src, err := s.prefetchPlan(pl)
	if err != nil {
		return nil, err
	}
	t1 := s.obs.observeFetch(t0)
	ms, err := query.ExecuteRanked(pl, query.Exec{Src: src, Total: totalDocs, Verify: s.verifyDocs})
	if err != nil {
		return nil, err
	}
	s.obs.observeScore(t1)
	return ms, nil
}

// delete marks a document deleted. It waits for any running flush on this
// shard to finish.
func (s *shard) delete(doc postings.DocID) {
	s.flushMu.Lock()
	defer s.flushMu.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.index.Delete(doc)
}

// sweep physically reclaims the postings of deleted documents from the
// shard's index and, when documents are kept, compacts them out of its
// document store.
func (s *shard) sweep() error {
	s.flushMu.Lock()
	defer s.flushMu.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sweepLocked()
}

// trySweep is sweep for the maintenance controller: instead of waiting for
// a running flush it answers maintain.ErrBusy, so background maintenance
// slots into the gaps between flushes rather than queueing behind them.
func (s *shard) trySweep() error {
	if !s.flushMu.TryLock() {
		return maintain.ErrBusy
	}
	defer s.flushMu.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sweepLocked()
}

// sweepLocked is the sweep body; the caller holds flushMu and mu.
func (s *shard) sweepLocked() error {
	swept := s.index.DeletedCount()
	deleted := make(map[postings.DocID]bool)
	c, compacting := s.docs.(docstore.Compactor)
	if compacting {
		// Snapshot the filter before the index sweep clears it.
		for d := postings.DocID(1); d <= s.lastDoc; d++ {
			if s.index.IsDeleted(d) {
				deleted[d] = true
			}
		}
	}
	if err := s.index.Sweep(); err != nil {
		return err
	}
	if s.docsIndexed -= swept; s.docsIndexed < 0 {
		s.docsIndexed = 0
	}
	if !compacting || len(deleted) == 0 {
		return nil
	}
	return c.Compact(func(d postings.DocID) bool { return !deleted[d] })
}

// readCost reports how many disk reads a query for word would need on this
// shard (1 chunk = 1 read; bucket words are in memory).
func (s *shard) readCost(word string) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	w, ok := s.vocab.Lookup(word)
	if !ok {
		return 0
	}
	if s.snap != nil {
		return s.snap.ReadCost(w)
	}
	return s.index.ReadCost(w)
}

// bucketLoadFactor reports how full this shard's short-list bucket space is.
func (s *shard) bucketLoadFactor() float64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.snap != nil {
		b := s.snap.Buckets()
		capacity := float64(b.NumBuckets()) * float64(b.BucketSize())
		if capacity == 0 {
			return 0
		}
		return float64(b.TotalLoad()) / capacity
	}
	return s.index.BucketLoadFactor()
}

// rebalanceBuckets moves every short list of this shard into a new bucket
// space of the given geometry and checkpoints the result.
func (s *shard) rebalanceBuckets(buckets, bucketSize int) error {
	s.flushMu.Lock()
	defer s.flushMu.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.index.RebalanceBuckets(buckets, bucketSize)
}

// tryRebalance is rebalanceBuckets for the maintenance controller,
// answering maintain.ErrBusy instead of waiting behind a running flush.
func (s *shard) tryRebalance(buckets, bucketSize int) error {
	if !s.flushMu.TryLock() {
		return maintain.ErrBusy
	}
	defer s.flushMu.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.index.RebalanceBuckets(buckets, bucketSize)
}

// maintainSignals gathers the observability inputs one maintenance
// decision about this shard is made from, under one read lock. During a
// flush the structural numbers come from the flush's snapshot, like every
// other mid-flush read.
func (s *shard) maintainSignals(i int) maintain.ShardSignals {
	s.mu.RLock()
	defer s.mu.RUnlock()
	sig := maintain.ShardSignals{
		Shard:           i,
		PendingDocs:     s.pendingDocs,
		PendingPostings: s.pendingPostings,
	}
	b := s.index.Buckets()
	deleted := s.index.DeletedCount()
	if s.snap != nil {
		b = s.snap.Buckets()
		deleted = s.snap.DeletedCount()
	}
	sig.Buckets = b.NumBuckets()
	sig.BucketSize = b.BucketSize()
	if capacity := float64(sig.Buckets) * float64(sig.BucketSize); capacity > 0 {
		sig.LoadFactor = float64(b.TotalLoad()) / capacity
	}
	sig.DeletedDocs = deleted
	sig.DocsIndexed = s.docsIndexed
	sig.DeadFraction = deadFraction(s.docsIndexed, deleted)
	return sig
}

// deletedCount reports the shard's logically deleted (not yet swept)
// document count, snapshot-aware like stats.
func (s *shard) deletedCount() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.snap != nil {
		return s.snap.DeletedCount()
	}
	return s.index.DeletedCount()
}

// numDocsIndexed reports how many documents this shard's on-disk index
// holds (flushed minus swept).
func (s *shard) numDocsIndexed() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.docsIndexed
}

// checkConsistency verifies the shard index's structural invariants.
func (s *shard) checkConsistency() error {
	s.flushMu.Lock()
	defer s.flushMu.Unlock()
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.index.CheckConsistency()
}

// document returns the stored text of a document owned by this shard.
func (s *shard) document(id postings.DocID) (text string, ok bool, err error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.docs == nil {
		return "", false, fmt.Errorf("dualindex: Options.KeepDocuments not enabled")
	}
	// Mid-flush the live index's deletion filter is mutating; consult the
	// published snapshot's instead, as list() does.
	isDeleted := s.index.IsDeleted
	if s.snap != nil {
		isDeleted = s.snap.IsDeleted
	}
	if isDeleted(id) {
		return "", false, nil
	}
	return s.docs.Get(id)
}

// compressionBytes samples the codec's cumulative raw/encoded byte
// counters for the observability closures. The counters are monotonic
// atomics inside the long-list store and s.index is set once at
// construction, so the sample takes no shard lock — metric scrapes run
// concurrently with flushes and must not queue behind them.
func (s *shard) compressionBytes() (raw, encoded int64) {
	return s.index.LongLists().CompressionBytes()
}

// diskOpCounts samples disk d's operation counters; same locking story as
// compressionBytes (the counters are guarded inside the disk array).
func (s *shard) diskOpCounts(d int) disk.DiskOps {
	return s.index.Array().DiskOpCounts(d)
}

// verifyDocs is the positional half of candidate verification (the
// executor's VerifyFunc): it keeps the candidates whose positional tokens
// satisfy check. A candidate still in the live tier verifies from the
// tier's in-memory tokens — no document-store read, no re-tokenization —
// which is what makes phrase, proximity and region conditions on unflushed
// documents as cheap as boolean ones; everything else reads the document
// store. Both paths apply the same tokenization, so a document verifies
// identically before and after its flush. Called under s.mu.RLock, from
// plan execution.
func (s *shard) verifyDocs(candidates []DocID, check func([]lexer.Token) bool) ([]DocID, error) {
	if s.docs == nil {
		return nil, fmt.Errorf("dualindex: positional queries need Options.KeepDocuments")
	}
	var out []DocID
	for _, d := range candidates {
		if toks, ok := s.liveDocTokens(d); ok {
			if check(toks) {
				out = append(out, d)
			}
			continue
		}
		text, ok, err := s.docs.Get(d)
		if err != nil {
			return nil, err
		}
		if !ok {
			return nil, fmt.Errorf("dualindex: indexed document %d missing from the document store", d)
		}
		if check(lexer.TokenizePositions(text, s.opts.Lexer)) {
			out = append(out, d)
		}
	}
	return out, nil
}

// liveDocTokens looks a document's positional tokens up in the live tier
// and, mid-flush, in the detached tier being applied (snapLive) — the same
// publish/release pairing every tier read honors. ok is false when the
// document is not in either (flushed, or the engine runs without
// Options.LiveSearch). Called under s.mu.RLock.
func (s *shard) liveDocTokens(d postings.DocID) ([]lexer.Token, bool) {
	if s.live != nil {
		if toks, ok := s.live.docTokens(d); ok {
			return toks, true
		}
	}
	if s.snapLive != nil {
		if toks, ok := s.snapLive.docTokens(d); ok {
			return toks, true
		}
	}
	return nil, false
}

// maxDoc reports the largest document identifier this shard has seen — the
// per-shard half of Engine.collectionSize.
func (s *shard) maxDoc() DocID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.lastDoc
}

// close releases the shard's resources, persisting the vocabulary first for
// on-disk shards.
func (s *shard) close() error {
	s.flushMu.Lock()
	defer s.flushMu.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	var first error
	if s.dir != "" {
		first = s.saveVocab()
	}
	if s.docs != nil {
		if err := s.docs.Close(); err != nil && first == nil {
			first = err
		}
	}
	if err := s.store.Close(); err != nil && first == nil {
		first = err
	}
	return first
}
