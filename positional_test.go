package dualindex

import (
	"strings"
	"testing"
)

func positionalEngine(t *testing.T, dir string) *Engine {
	t.Helper()
	eng, err := Open(Options{Dir: dir, KeepDocuments: true, Buckets: 8, BucketSize: 128})
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

func TestPositionalQueriesRequireDocStore(t *testing.T) {
	eng, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	eng.AddDocument("some words")
	if _, err := eng.SearchPhrase("some words"); err == nil {
		t.Error("phrase query without doc store accepted")
	}
	if _, err := eng.SearchNear("some", "words", 3); err == nil {
		t.Error("proximity query without doc store accepted")
	}
	if _, err := eng.SearchInRegion("some", "title"); err == nil {
		t.Error("region query without doc store accepted")
	}
	if _, _, err := eng.Document(1); err == nil {
		t.Error("Document without doc store accepted")
	}
}

func TestSearchPhrase(t *testing.T) {
	eng := positionalEngine(t, "")
	defer eng.Close()
	d1 := eng.AddDocument("the quick brown fox jumps")
	d2 := eng.AddDocument("the brown quick fox sits") // words present, order wrong
	d3 := eng.AddDocument("quick brown things exist")
	if _, err := eng.FlushBatch(); err != nil {
		t.Fatal(err)
	}
	docs, err := eng.SearchPhrase("quick brown")
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != 2 || docs[0] != d1 || docs[1] != d3 {
		t.Fatalf("phrase = %v", docs)
	}
	docs, err = eng.SearchPhrase("quick brown fox")
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != 1 || docs[0] != d1 {
		t.Fatalf("longer phrase = %v", docs)
	}
	if docs, _ := eng.SearchPhrase("fox quick"); len(docs) != 0 {
		t.Fatalf("reversed phrase matched %v", docs)
	}
	if _, err := eng.SearchPhrase("   "); err == nil {
		t.Error("empty phrase accepted")
	}
	_ = d2
}

func TestSearchPhraseSeesPendingDocs(t *testing.T) {
	eng := positionalEngine(t, "")
	defer eng.Close()
	d := eng.AddDocument("fresh exact sequence here")
	docs, err := eng.SearchPhrase("exact sequence")
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != 1 || docs[0] != d {
		t.Fatalf("pending phrase = %v", docs)
	}
}

func TestSearchNear(t *testing.T) {
	eng := positionalEngine(t, "")
	defer eng.Close()
	d1 := eng.AddDocument("cat sat near the dog")     // distance 4
	d2 := eng.AddDocument("cat dog")                  // distance 1
	d3 := eng.AddDocument("dog barks at the old cat") // distance 5, reversed
	if _, err := eng.FlushBatch(); err != nil {
		t.Fatal(err)
	}
	docs, err := eng.SearchNear("cat", "dog", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != 1 || docs[0] != d2 {
		t.Fatalf("near 1 = %v", docs)
	}
	docs, err = eng.SearchNear("cat", "dog", 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != 3 {
		t.Fatalf("near 5 = %v (want all of %v %v %v)", docs, d1, d2, d3)
	}
	// Same word twice: needs two occurrences within the window.
	d4 := eng.AddDocument("echo echo")
	eng.AddDocument("echo alone")
	if _, err := eng.FlushBatch(); err != nil {
		t.Fatal(err)
	}
	docs, err = eng.SearchNear("echo", "echo", 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != 1 || docs[0] != d4 {
		t.Fatalf("self-near = %v", docs)
	}
	if _, err := eng.SearchNear("cat", "dog", 0); err == nil {
		t.Error("zero window accepted")
	}
	if _, err := eng.SearchNear("two words", "dog", 3); err == nil {
		t.Error("multi-word proximity operand accepted")
	}
}

func TestSearchInRegion(t *testing.T) {
	eng := positionalEngine(t, "")
	defer eng.Close()
	d1 := eng.AddDocument("Subject: market update\n\nnothing else")
	d2 := eng.AddDocument("Subject: weather\n\nthe market crashed today")
	if _, err := eng.FlushBatch(); err != nil {
		t.Fatal(err)
	}
	docs, err := eng.SearchInRegion("market", "title")
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != 1 || docs[0] != d1 {
		t.Fatalf("title region = %v", docs)
	}
	docs, err = eng.SearchInRegion("market", "body")
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != 1 || docs[0] != d2 {
		t.Fatalf("body region = %v", docs)
	}
	if _, err := eng.SearchInRegion("market", "footnote"); err == nil {
		t.Error("unknown region accepted")
	}
}

func TestDocumentRetrieval(t *testing.T) {
	eng := positionalEngine(t, "")
	defer eng.Close()
	text := "retrievable document text"
	d := eng.AddDocument(text)
	got, ok, err := eng.Document(d)
	if err != nil || !ok || got != text {
		t.Fatalf("Document = %q, %v, %v", got, ok, err)
	}
	if _, ok, _ := eng.Document(999); ok {
		t.Error("unknown document found")
	}
	eng.Delete(d)
	if _, ok, _ := eng.Document(d); ok {
		t.Error("deleted document still retrievable")
	}
}

func TestDocStorePersistsAcrossOpen(t *testing.T) {
	dir := t.TempDir()
	eng := positionalEngine(t, dir)
	d := eng.AddDocument("Subject: durable title\n\ndurable body words")
	if _, err := eng.FlushBatch(); err != nil {
		t.Fatal(err)
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	re := positionalEngine(t, dir)
	defer re.Close()
	text, ok, err := re.Document(d)
	if err != nil || !ok || !strings.Contains(text, "durable body") {
		t.Fatalf("reopened Document = %q, %v, %v", text, ok, err)
	}
	docs, err := re.SearchPhrase("durable body words")
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != 1 || docs[0] != d {
		t.Fatalf("reopened phrase = %v", docs)
	}
	docs, err = re.SearchInRegion("durable", "title")
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != 1 {
		t.Fatalf("reopened region = %v", docs)
	}
}

func TestSweepCompactsDocStore(t *testing.T) {
	for _, dir := range []string{"", t.TempDir()} {
		eng := positionalEngine(t, dir)
		d1 := eng.AddDocument("keep this document")
		d2 := eng.AddDocument("drop this document")
		if _, err := eng.FlushBatch(); err != nil {
			t.Fatal(err)
		}
		eng.Delete(d2)
		if err := eng.Sweep(); err != nil {
			t.Fatal(err)
		}
		if _, ok, _ := eng.Document(d2); ok {
			t.Error("swept document still in the store")
		}
		if text, ok, _ := eng.Document(d1); !ok || !strings.Contains(text, "keep") {
			t.Error("surviving document damaged by compaction")
		}
		// The store keeps answering phrase queries after compaction.
		docs, err := eng.SearchPhrase("keep this")
		if err != nil {
			t.Fatal(err)
		}
		if len(docs) != 1 || docs[0] != d1 {
			t.Fatalf("post-compaction phrase = %v", docs)
		}
		eng.Close()
	}
}

func TestCrashRecoversPendingDocuments(t *testing.T) {
	dir := t.TempDir()
	eng := positionalEngine(t, dir)
	d1 := eng.AddDocument("checkpointed content")
	if _, err := eng.FlushBatch(); err != nil {
		t.Fatal(err)
	}
	// Two documents added after the checkpoint; then a "crash" (Close
	// persists them in docs.log but the index never flushed the batch).
	d2 := eng.AddDocument("unflushed article alpha")
	d3 := eng.AddDocument("unflushed article beta")
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}

	re := positionalEngine(t, dir)
	defer re.Close()
	// The lost documents are back in the pending batch, searchable
	// immediately and flushable.
	if re.PendingDocs() != 2 {
		t.Fatalf("recovered pending = %d, want 2", re.PendingDocs())
	}
	docs, err := re.SearchBoolean("unflushed")
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != 2 || docs[0] != d2 || docs[1] != d3 {
		t.Fatalf("recovered search = %v", docs)
	}
	if _, err := re.FlushBatch(); err != nil {
		t.Fatal(err)
	}
	docs, _ = re.SearchBoolean("checkpointed or unflushed")
	if len(docs) != 3 || docs[0] != d1 {
		t.Fatalf("post-recovery flush search = %v", docs)
	}
	// New ids continue beyond the recovered ones.
	if d4 := re.AddDocument("fresh"); d4 != d3+1 {
		t.Fatalf("next id %d, want %d", d4, d3+1)
	}
}
