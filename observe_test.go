package dualindex

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"

	"dualindex/internal/trace"
)

// observeOpts is smallOpts with every observability feature on: metrics,
// span recording, a nanosecond slow-query threshold (every query logs) and a
// small block cache so the cache gauges have something to report.
func observeOpts(shards int) Options {
	opts := smallOpts(shards)
	opts.CacheBlocks = 8
	opts.Metrics = true
	opts.TraceBuffer = 512
	opts.SlowQuery = 1
	return opts
}

// TestObservabilityEndToEnd drives an instrumented engine through flushes
// and queries and checks every signal arrives: flush and query metrics,
// scrape-time gauges, trace spans (ring and JSONL sink) and the slow-query
// log.
func TestObservabilityEndToEnd(t *testing.T) {
	var sink bytes.Buffer
	opts := observeOpts(1)
	opts.TraceSink = &sink
	eng, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	for _, text := range synthTexts(29, 60, 30, 20) {
		eng.AddDocument(text)
	}
	if _, err := eng.FlushBatch(); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.SearchBoolean(synthWord(0) + " or " + synthWord(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.SearchVector(synthWord(0)+" "+synthWord(2), 5); err != nil {
		t.Fatal(err)
	}

	reg := eng.Metrics()
	if reg == nil {
		t.Fatal("Metrics() = nil with Options.Metrics set")
	}
	if got := reg.Counter(`flushes_total{shard="0"}`).Value(); got != 1 {
		t.Errorf("flushes_total = %d, want 1", got)
	}
	if got := reg.Counter(`flush_docs_total{shard="0"}`).Value(); got != 60 {
		t.Errorf("flush_docs_total = %d, want 60", got)
	}
	if got := reg.Counter(`queries_total{kind="boolean"}`).Value(); got != 1 {
		t.Errorf("queries_total{boolean} = %d, want 1", got)
	}
	if got := reg.Counter(`queries_total{kind="vector"}`).Value(); got != 1 {
		t.Errorf("queries_total{vector} = %d, want 1", got)
	}
	if got := reg.Counter("slow_queries_total").Value(); got != 2 {
		t.Errorf("slow_queries_total = %d, want 2", got)
	}
	for _, name := range []string{
		`flush_seconds{shard="0"}`,
		`flush_phase_seconds{phase="plan",shard="0"}`,
		`flush_phase_seconds{phase="bucket_flush",shard="0"}`,
		`flush_phase_seconds{phase="checkpoint",shard="0"}`,
		`flush_phase_seconds{phase="release",shard="0"}`,
		`query_phase_seconds{phase="route"}`,
		`query_phase_seconds{phase="merge"}`,
		`query_phase_seconds{phase="fetch",shard="0"}`,
		`query_phase_seconds{phase="score",shard="0"}`,
		`query_seconds{kind="boolean"}`,
	} {
		if snap := reg.Histogram(name, nil).Snapshot(); snap.Count == 0 {
			t.Errorf("histogram %s recorded nothing", name)
		}
	}

	// Scrape-time gauges: pending docs, bucket load, cache and per-disk I/O.
	gauges := reg.Snapshot()["gauges"].(map[string]float64)
	for _, name := range []string{
		`pending_docs{shard="0"}`,
		`bucket_load_factor{shard="0"}`,
		`cache_hits_total{shard="0"}`,
		`disk_read_ops_total{shard="0",disk="0"}`,
		`disk_write_ops_total{shard="0",disk="1"}`,
	} {
		if _, ok := gauges[name]; !ok {
			t.Errorf("scrape gauge %s not registered", name)
		}
	}
	if v := gauges[`disk_write_ops_total{shard="0",disk="0"}`]; v == 0 {
		t.Error("disk 0 write ops gauge = 0 after a flush")
	}

	// Prometheus exposition: namespaced series with merged labels.
	var prom bytes.Buffer
	if err := reg.WritePrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	text := prom.String()
	for _, want := range []string{
		`dualindex_flushes_total{shard="0"} 1`,
		`dualindex_queries_total{kind="boolean"} 1`,
		`# TYPE dualindex_flush_phase_seconds histogram`,
		`dualindex_flush_seconds_bucket{shard="0",le="+Inf"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("Prometheus output missing %q", want)
		}
	}

	// Trace spans: flush phases under the shard scope, query phases under
	// the engine scope, all mirrored to the JSONL sink.
	events := eng.Tracer().Events()
	if len(events) == 0 {
		t.Fatal("no trace events recorded")
	}
	seen := map[string]bool{}
	for _, ev := range events {
		seen[ev.Scope+"/"+ev.Name] = true
	}
	for _, want := range []string{
		"shard-0/flush.plan", "shard-0/flush.bucket_flush", "shard-0/flush",
		"engine/query.route", "engine/query.merge", "engine/query",
		"shard-0/query.fetch", "shard-0/query.score", "engine/query.slow",
	} {
		if !seen[want] {
			t.Errorf("trace missing span %s", want)
		}
	}
	dec := json.NewDecoder(&sink)
	sunk := 0
	for dec.More() {
		var ev trace.Event
		if err := dec.Decode(&ev); err != nil {
			t.Fatalf("sink line %d: %v", sunk, err)
		}
		sunk++
	}
	if sunk < len(events) {
		t.Errorf("sink holds %d events, ring %d", sunk, len(events))
	}

	// Slow-query log: with a 1ns threshold both queries qualify.
	slow := eng.SlowQueries()
	if len(slow) != 2 {
		t.Fatalf("SlowQueries len = %d, want 2", len(slow))
	}
	if slow[0].Kind != "boolean" || slow[1].Kind != "vector" {
		t.Errorf("slow-query kinds = %s, %s", slow[0].Kind, slow[1].Kind)
	}
	if !strings.Contains(slow[0].Query, synthWord(0)) || slow[0].Dur <= 0 {
		t.Errorf("slow-query record %+v malformed", slow[0])
	}
}

// TestObservabilityDisabled pins the disabled path: a default engine carries
// no observer, the accessors return nil/empty, and everything still works.
func TestObservabilityDisabled(t *testing.T) {
	eng, err := Open(smallOpts(2))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if eng.obs != nil {
		t.Error("observer allocated with observability off")
	}
	if eng.Metrics() != nil || eng.Tracer() != nil {
		t.Error("Metrics/Tracer non-nil with observability off")
	}
	for _, text := range synthTexts(31, 20, 20, 10) {
		eng.AddDocument(text)
	}
	if _, err := eng.FlushBatch(); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.SearchBoolean(synthWord(0)); err != nil {
		t.Fatal(err)
	}
	if got := eng.SlowQueries(); len(got) != 0 {
		t.Errorf("SlowQueries = %v, want empty", got)
	}
}

// TestBatchStatsPhases checks FlushBatch reports where the flush spent its
// time: every batch's phase durations sum to a positive total, with the
// always-run phases (plan, bucket flush, checkpoint, release) non-negative
// and plan positive.
func TestBatchStatsPhases(t *testing.T) {
	eng, err := Open(smallOpts(2))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	for _, text := range synthTexts(37, 40, 30, 20) {
		eng.AddDocument(text)
	}
	st, err := eng.FlushBatch()
	if err != nil {
		t.Fatal(err)
	}
	if st.Phases.Total() <= 0 {
		t.Fatalf("Phases.Total() = %v, want > 0 (phases %+v)", st.Phases.Total(), st.Phases)
	}
	if st.Phases.Plan <= 0 {
		t.Errorf("Phases.Plan = %v, want > 0", st.Phases.Plan)
	}
	if st.Phases.LongApply < 0 || st.Phases.BucketFlush < 0 || st.Phases.Checkpoint < 0 || st.Phases.Release < 0 {
		t.Errorf("negative phase duration: %+v", st.Phases)
	}
}

// TestStatsAggregationSharded pins the sharded Stats derivations of this PR:
// MaxBucketLoadFactor is the per-shard maximum (at least the mean, equal to
// it for one shard), Utilization is the long-list-weighted mean of the
// per-shard utilizations, and an empty engine reports clean zeros — never
// NaN — for every ratio.
func TestStatsAggregationSharded(t *testing.T) {
	// Empty 4-shard engine: no long lists, no cache traffic. The weighted
	// means divide by zero unless guarded; the guard must yield 0.
	empty, err := Open(smallOpts(4))
	if err != nil {
		t.Fatal(err)
	}
	defer empty.Close()
	st := empty.Stats()
	for name, v := range map[string]float64{
		"Utilization":         st.Utilization,
		"AvgReadsPerList":     st.AvgReadsPerList,
		"CacheHitRate":        st.CacheHitRate,
		"MaxBucketLoadFactor": st.MaxBucketLoadFactor,
	} {
		if math.IsNaN(v) {
			t.Errorf("empty engine: %s is NaN", name)
		}
	}
	if st.Utilization != 0 || st.AvgReadsPerList != 0 || st.CacheHitRate != 0 {
		t.Errorf("empty engine ratios = %v/%v/%v, want zeros",
			st.Utilization, st.AvgReadsPerList, st.CacheHitRate)
	}

	// Loaded 4-shard engine: check the aggregates against the per-shard
	// stats they derive from.
	eng, err := Open(smallOpts(4))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	for i, text := range synthTexts(41, 120, 40, 25) {
		eng.AddDocument(text)
		if (i+1)%40 == 0 {
			if _, err := eng.FlushBatch(); err != nil {
				t.Fatal(err)
			}
		}
	}
	st = eng.Stats()
	var utilWeighted float64
	longLists := 0
	maxLoad := 0.0
	for _, s := range eng.shards {
		ss := s.stats()
		utilWeighted += ss.Utilization * float64(ss.LongLists)
		longLists += ss.LongLists
		if ss.MaxBucketLoadFactor > maxLoad {
			maxLoad = ss.MaxBucketLoadFactor
		}
	}
	if longLists == 0 {
		t.Fatal("corpus produced no long lists; aggregation untested")
	}
	if want := utilWeighted / float64(longLists); math.Abs(st.Utilization-want) > 1e-12 {
		t.Errorf("Utilization = %v, want long-list-weighted mean %v", st.Utilization, want)
	}
	if st.MaxBucketLoadFactor != maxLoad {
		t.Errorf("MaxBucketLoadFactor = %v, want per-shard max %v", st.MaxBucketLoadFactor, maxLoad)
	}
	if mean := eng.BucketLoadFactor(); st.MaxBucketLoadFactor < mean {
		t.Errorf("MaxBucketLoadFactor %v < mean load factor %v", st.MaxBucketLoadFactor, mean)
	}
	if st.MaxBucketLoadFactor <= 0 {
		t.Error("MaxBucketLoadFactor = 0 on a loaded engine")
	}

	// Single shard: max and mean coincide by construction.
	one, err := Open(smallOpts(1))
	if err != nil {
		t.Fatal(err)
	}
	defer one.Close()
	for _, text := range synthTexts(43, 40, 30, 20) {
		one.AddDocument(text)
	}
	if _, err := one.FlushBatch(); err != nil {
		t.Fatal(err)
	}
	if got, want := one.Stats().MaxBucketLoadFactor, one.BucketLoadFactor(); got != want {
		t.Errorf("single shard: MaxBucketLoadFactor = %v, BucketLoadFactor = %v", got, want)
	}
}

// TestSlowQueryLogBounded pins Options.SlowQueryLog: the ring keeps exactly
// the configured number of most recent entries, oldest first, and the
// zero value defaults to 128.
func TestSlowQueryLogBounded(t *testing.T) {
	opts := smallOpts(1)
	opts.SlowQuery = 1 // every query qualifies
	opts.SlowQueryLog = 4
	eng, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	for _, text := range synthTexts(83, 30, 20, 10) {
		eng.AddDocument(text)
	}
	if _, err := eng.FlushBatch(); err != nil {
		t.Fatal(err)
	}

	queries := make([]string, 10)
	for i := range queries {
		queries[i] = synthWord(i % 20)
		if _, err := eng.SearchBoolean(queries[i]); err != nil {
			t.Fatal(err)
		}
	}
	slow := eng.SlowQueries()
	if len(slow) != 4 {
		t.Fatalf("SlowQueries len = %d, want the configured cap 4", len(slow))
	}
	for i, rec := range slow {
		// The survivors are the last four queries, oldest first.
		if want := queries[len(queries)-4+i]; rec.Query != want {
			t.Errorf("slow[%d].Query = %q, want %q", i, rec.Query, want)
		}
	}
	if !slow[0].Time.Before(slow[3].Time) && !slow[0].Time.Equal(slow[3].Time) {
		t.Error("slow-query log not in oldest-first order")
	}

	// The zero value defaults to 128 — the pre-option capacity.
	if got := (Options{}).withDefaults().SlowQueryLog; got != 128 {
		t.Errorf("default SlowQueryLog = %d, want 128", got)
	}
}
