module dualindex

go 1.22
