package dualindex

import (
	"fmt"
	"os"
	"path/filepath"

	"dualindex/internal/disk"
	"dualindex/internal/vocab"
)

// Open creates an engine, resuming from Dir's last checkpoint when one
// exists. Documents whose text is not kept and that were added since the
// last FlushBatch are not part of a checkpoint; re-add them after a crash
// (with Options.KeepDocuments they are recovered from the document log).
//
// On-disk layout: a single-shard engine stores its files (disk*.dat,
// vocab.txt, docs.log) directly under Dir — the pre-sharding layout,
// unchanged. A sharded engine gives each shard its own Dir/shard-<i>/
// subdirectory with that same layout inside, and Open recovers the shards
// one by one. The shard count is part of the layout: reopening an index
// with a different Options.Shards than it was built with is refused, since
// the document-to-shard routing would no longer match.
func Open(opts Options) (*Engine, error) {
	opts = opts.withDefaults()
	if opts.Shards < 0 {
		return nil, fmt.Errorf("dualindex: negative shard count %d", opts.Shards)
	}
	if opts.Dir != "" {
		if err := checkShardLayout(opts.Dir, opts.Shards); err != nil {
			return nil, err
		}
	}
	e := &Engine{opts: opts, obs: newObserver(opts)}
	for i := 0; i < opts.Shards; i++ {
		s, err := openShard(opts, shardDir(opts.Dir, i, opts.Shards))
		if err != nil {
			for _, prev := range e.shards {
				prev.close()
			}
			return nil, fmt.Errorf("dualindex: shard %d: %w", i, err)
		}
		s.obs = e.obs.shardObs(i)
		e.shards = append(e.shards, s)
		if s.lastDoc > e.nextDoc {
			e.nextDoc = s.lastDoc
		}
	}
	e.registerShardFuncs()
	return e, nil
}

// shardDir returns shard i's directory: Dir itself for a single-shard
// engine (the flat pre-sharding layout), Dir/shard-<i> otherwise. Empty for
// in-memory engines.
func shardDir(dir string, i, shards int) string {
	if dir == "" {
		return ""
	}
	if shards == 1 {
		return dir
	}
	return filepath.Join(dir, fmt.Sprintf("shard-%d", i))
}

// checkShardLayout refuses to open an existing index with a shard count
// other than the one it was built with: the flat layout (disk0.dat directly
// under Dir) marks a single-shard index, shard-<i> subdirectories mark a
// sharded one.
func checkShardLayout(dir string, shards int) error {
	existing := 0
	for {
		if _, err := os.Stat(filepath.Join(dir, fmt.Sprintf("shard-%d", existing), "disk0.dat")); err != nil {
			break
		}
		existing++
	}
	_, err := os.Stat(filepath.Join(dir, "disk0.dat"))
	flat := err == nil
	switch {
	case flat && shards > 1:
		return fmt.Errorf("dualindex: %s holds a single-shard index; reopen it with Shards <= 1", dir)
	case existing > 0 && shards == 1:
		return fmt.Errorf("dualindex: %s holds a %d-shard index; reopen it with Shards = %d", dir, existing, existing)
	case existing > 0 && existing != shards:
		return fmt.Errorf("dualindex: %s holds a %d-shard index, not %d shards", dir, existing, shards)
	}
	return nil
}

func openFileStore(dir string, disks, blockSize int, resume bool) (disk.BlockStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	if !resume {
		return disk.NewFileStore(dir, disks, blockSize)
	}
	// Reopen existing files without truncation.
	return disk.OpenFileStore(dir, disks, blockSize)
}

func (s *shard) vocabPath() string { return filepath.Join(s.dir, "vocab.txt") }

func (s *shard) saveVocab() error {
	tmp := s.vocabPath() + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := s.vocab.WriteTo(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, s.vocabPath())
}

func (s *shard) loadVocab() error {
	f, err := os.Open(s.vocabPath())
	if err != nil {
		if os.IsNotExist(err) {
			return nil // empty index checkpoint with no vocabulary yet
		}
		return err
	}
	defer f.Close()
	v, err := vocab.Read(f)
	if err != nil {
		return err
	}
	s.vocab = v
	return nil
}
