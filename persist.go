package dualindex

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"dualindex/internal/disk"
	"dualindex/internal/maintain"
	"dualindex/internal/manifest"
	"dualindex/internal/route"
	"dualindex/internal/vocab"
)

// Open creates an engine, resuming from Dir's last checkpoint when one
// exists. Documents whose text is not kept and that were added since the
// last FlushBatch are not part of a checkpoint; re-add them after a crash
// (with Options.KeepDocuments they are recovered from the document log).
//
// On-disk layout: a single-shard engine stores its files (disk*.dat,
// vocab.txt, docs.log) directly under Dir — the pre-sharding layout,
// unchanged. A sharded engine gives each shard its own Dir/shard-<i>/
// subdirectory with that same layout inside, and Open recovers the shards
// one by one. A MANIFEST.json at the directory root records the shard
// count, the document routing and a format version; directories from before
// the manifest existed are detected by their layout and upgraded in place.
//
// The shard count and routing are part of the index's identity — they
// decide where every document lives — so Open refuses an existing index
// whose manifest disagrees with a non-zero Options.Shards or non-empty
// Options.Routing. Leave them zero to adopt whatever the manifest records
// (the usual way to reopen), and use Engine.Reshard to change the shard
// count of a live index.
func Open(opts Options) (*Engine, error) {
	opts = opts.withDefaults()
	if opts.Shards < 0 {
		return nil, fmt.Errorf("dualindex: negative shard count %d", opts.Shards)
	}
	if opts.RangeSpan < 0 {
		return nil, fmt.Errorf("dualindex: negative range span %d", opts.RangeSpan)
	}
	if err := opts.validateStorage(); err != nil {
		return nil, err
	}
	writeManifest := false
	if opts.Dir == "" {
		opts = opts.routingDefaults().storageDefaults()
	} else {
		m, fresh, err := resolveLayout(opts.Dir, opts)
		if err != nil {
			return nil, err
		}
		opts.Shards, opts.Routing, opts.RangeSpan = m.Shards, m.Routing, m.RangeSpan
		opts.Backend, opts.Codec = manifestBackend(m), manifestCodec(m)
		writeManifest = fresh
	}
	router, err := route.New(opts.Routing, opts.Shards, opts.RangeSpan)
	if err != nil {
		return nil, fmt.Errorf("dualindex: %w", err)
	}
	e := &Engine{opts: opts, router: router, obs: newObserver(opts)}
	for i := 0; i < opts.Shards; i++ {
		s, err := openShard(opts, shardDir(opts.Dir, i, opts.Shards))
		if err != nil {
			for _, prev := range e.shards {
				prev.close()
			}
			return nil, fmt.Errorf("dualindex: shard %d: %w", i, err)
		}
		s.obs = e.obs.shardObs(i)
		e.shards = append(e.shards, s)
		if s.lastDoc > e.nextDoc {
			e.nextDoc = s.lastDoc
		}
	}
	if writeManifest {
		// Stamped only after every shard opened, so a failed create leaves
		// no manifest claiming shards that were never built.
		if err := manifest.Save(opts.Dir, manifestFor(opts)); err != nil {
			e.Close()
			return nil, fmt.Errorf("dualindex: writing index manifest: %w", err)
		}
	}
	e.registerShardFuncs()
	if opts.Maintenance != nil {
		ctl, err := maintain.New(engineTarget{e}, maintain.Config{
			Thresholds: *opts.Maintenance,
			Registry:   e.Metrics(),
			Tracer:     e.Tracer(),
		})
		if err != nil {
			e.Close()
			return nil, fmt.Errorf("dualindex: %w", err)
		}
		e.maint = ctl
		ctl.Start()
	}
	return e, nil
}

// manifestFor renders an Options set (with routing and storage already
// resolved) as the manifest to persist.
func manifestFor(opts Options) manifest.Manifest {
	m := manifest.Manifest{
		Version: manifest.Version,
		Shards:  opts.Shards,
		Routing: opts.Routing,
		Backend: opts.Backend,
		Codec:   opts.Codec,
	}
	if opts.Routing == route.KindRange {
		m.RangeSpan = opts.RangeSpan
	}
	return m
}

// manifestBackend and manifestCodec read a manifest's storage fields with
// their version-1 defaults: manifests from before the fields existed
// describe file-backed, raw-codec indexes — the only kind there was.
func manifestBackend(m manifest.Manifest) string {
	if m.Backend == "" {
		return BackendFile
	}
	return m.Backend
}

func manifestCodec(m manifest.Manifest) string {
	if m.Codec == "" {
		return CodecRaw
	}
	return m.Codec
}

// resolveLayout determines dir's shard count and routing, reconciling the
// on-disk manifest with the requested options. It first settles any
// interrupted reshard: a committed staging directory (the rename happened)
// is rolled forward, an uncommitted one is discarded. Then:
//
//   - A manifest is loaded and checked against the options: a non-zero
//     Options.Shards or non-empty Options.Routing that disagrees with the
//     recorded values is refused with a descriptive error, and every shard
//     directory the manifest promises must exist.
//   - A manifest-less directory holding a legacy layout (flat files or
//     shard-<i> subdirectories from before the manifest existed) is
//     detected and upgraded in place: legacy indexes were always
//     hash-routed, so requesting any other routing for one is refused.
//   - An empty or absent directory is a fresh index: the options decide,
//     and fresh=true tells Open to stamp the manifest once the shards are
//     built.
func resolveLayout(dir string, opts Options) (m manifest.Manifest, fresh bool, err error) {
	if err := finishReshardCommit(dir); err != nil {
		return m, false, fmt.Errorf("dualindex: completing interrupted reshard: %w", err)
	}
	if err := os.RemoveAll(filepath.Join(dir, reshardStagingName)); err != nil {
		return m, false, fmt.Errorf("dualindex: discarding reshard staging: %w", err)
	}
	m, err = manifest.Load(dir)
	switch {
	case err == nil:
		if err := reconcileManifest(dir, m, opts); err != nil {
			return m, false, err
		}
		if err := verifyShardDirs(dir, m.Shards); err != nil {
			return m, false, err
		}
		return m, false, nil
	case errors.Is(err, fs.ErrNotExist):
		// Manifest-less: a legacy directory or a fresh one.
	default:
		return m, false, fmt.Errorf("dualindex: %w", err)
	}
	legacyShards, found, err := probeLegacyLayout(dir)
	if err != nil {
		return m, false, err
	}
	if found {
		// Legacy indexes predate routing choices: they are hash-routed by
		// construction, so upgrading stamps that — and refuses an explicit
		// request for anything else.
		if opts.Routing != "" && opts.Routing != route.KindHash {
			return m, false, fmt.Errorf(
				"dualindex: %s predates routing manifests and is hash-routed; it cannot be opened with Routing %q",
				dir, opts.Routing)
		}
		if opts.Shards != 0 && opts.Shards != legacyShards {
			return m, false, fmt.Errorf(
				"dualindex: %s holds a %d-shard index, not %d shards (set Shards to %d or 0 to adopt)",
				dir, legacyShards, opts.Shards, legacyShards)
		}
		// Legacy indexes likewise predate codec choices: they are raw by
		// construction.
		if opts.Codec != "" && opts.Codec != CodecRaw {
			return m, false, fmt.Errorf(
				"dualindex: %s predates codec manifests and is raw-encoded; it cannot be opened with Codec %q",
				dir, opts.Codec)
		}
		m = manifest.Manifest{
			Version: manifest.Version,
			Shards:  legacyShards,
			Routing: route.KindHash,
			Backend: BackendFile,
			Codec:   CodecRaw,
		}
		if err := manifest.Save(dir, m); err != nil {
			return m, false, fmt.Errorf("dualindex: upgrading legacy index layout: %w", err)
		}
		return m, false, nil
	}
	opts = opts.routingDefaults().storageDefaults()
	return manifestFor(opts), true, nil
}

// reconcileManifest refuses options that contradict what the manifest
// records. Zero-valued options mean "adopt the manifest".
func reconcileManifest(dir string, m manifest.Manifest, opts Options) error {
	if opts.Shards != 0 && opts.Shards != m.Shards {
		return fmt.Errorf(
			"dualindex: %s holds a %d-shard index, not %d shards (set Shards to %d or 0 to adopt; use Engine.Reshard to change it)",
			dir, m.Shards, opts.Shards, m.Shards)
	}
	if opts.Routing != "" && opts.Routing != m.Routing {
		return fmt.Errorf(
			"dualindex: %s is %s-routed, not %s-routed (routing is fixed when the index is created)",
			dir, m.Routing, opts.Routing)
	}
	if m.Routing == route.KindRange && opts.RangeSpan != 0 && opts.RangeSpan != m.RangeSpan {
		return fmt.Errorf(
			"dualindex: %s uses range span %d, not %d (the span is fixed when the index is created)",
			dir, m.RangeSpan, opts.RangeSpan)
	}
	if opts.Backend != "" && opts.Backend != manifestBackend(m) {
		return fmt.Errorf(
			"dualindex: %s was built on the %q backend, not %q",
			dir, manifestBackend(m), opts.Backend)
	}
	if opts.Codec != "" && opts.Codec != manifestCodec(m) {
		return fmt.Errorf(
			"dualindex: %s is %s-encoded, not %s-encoded (the codec shapes every on-disk chunk and is fixed when the index is created)",
			dir, manifestCodec(m), opts.Codec)
	}
	return nil
}

// verifyShardDirs checks that every shard the manifest promises is actually
// on disk, so a partially deleted index fails with a description instead of
// silently reopening the missing shard as empty — which would lose every
// document routed to it.
func verifyShardDirs(dir string, shards int) error {
	for i := 0; i < shards; i++ {
		sd := shardDir(dir, i, shards)
		if _, err := os.Stat(filepath.Join(sd, "disk0.dat")); err != nil {
			return fmt.Errorf(
				"dualindex: %s is a %d-shard index per its manifest, but shard %d's files are missing (%s); the index is partial — restore the directory or delete it and rebuild",
				dir, shards, i, filepath.Join(sd, "disk0.dat"))
		}
	}
	return nil
}

// shardResumes probes whether dir already holds a shard's disk files, i.e.
// whether opening it resumes an existing shard rather than creating one.
func shardResumes(dir string) bool {
	_, err := os.Stat(filepath.Join(dir, "disk0.dat"))
	return err == nil
}

// probeLegacyLayout detects a pre-manifest index: flat files directly under
// dir mark a single-shard index, shard-<i> subdirectories a sharded one.
// found is false for a fresh (empty or absent) directory.
func probeLegacyLayout(dir string) (shards int, found bool, err error) {
	if _, err := os.Stat(filepath.Join(dir, "disk0.dat")); err == nil {
		return 1, true, nil
	}
	n := 0
	for {
		if _, err := os.Stat(filepath.Join(dir, fmt.Sprintf("shard-%d", n), "disk0.dat")); err != nil {
			break
		}
		n++
	}
	if n > 0 {
		return n, true, nil
	}
	return 0, false, nil
}

// Reshard staging directories, both inside Dir. A reshard builds the new
// layout under .resharding/ and renames it to .reshard-commit/ as its
// atomic commit point: a leftover .resharding/ is an abandoned attempt and
// is discarded on open, while a .reshard-commit/ is a committed reshard
// whose file moves were interrupted and is rolled forward on open.
const (
	reshardStagingName = ".resharding"
	reshardCommitName  = ".reshard-commit"
)

// finishReshardCommit rolls a committed reshard forward: every entry of the
// staged layout is moved into place (replacing its predecessor), stale
// entries of the old layout are removed, and the staged manifest lands
// last, after which the commit directory is deleted. Every step is
// idempotent — entries already moved by an interrupted earlier attempt are
// simply no longer in the commit directory — so the function may be re-run
// after a crash at any point. A no-op when no commit directory exists.
func finishReshardCommit(dir string) error {
	cdir := filepath.Join(dir, reshardCommitName)
	if _, err := os.Stat(cdir); err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil
		}
		return err
	}
	m, err := manifest.Load(cdir)
	if err != nil {
		if !errors.Is(err, fs.ErrNotExist) {
			return err
		}
		// The manifest already moved — the last step before deleting the
		// commit directory — so every data entry moved before it. Only the
		// directory deletion remains.
		return os.RemoveAll(cdir)
	}
	// Remove old-layout entries the new layout will not overwrite. These
	// names are never part of the new layout, so re-removing after a crash
	// is harmless.
	if m.Shards > 1 {
		flat, err := filepath.Glob(filepath.Join(dir, "disk*.dat"))
		if err != nil {
			return err
		}
		stale := append(flat, filepath.Join(dir, "vocab.txt"), filepath.Join(dir, "docs.log"))
		for _, p := range stale {
			if err := os.RemoveAll(p); err != nil {
				return err
			}
		}
	}
	shardDirs, err := filepath.Glob(filepath.Join(dir, "shard-*"))
	if err != nil {
		return err
	}
	for _, p := range shardDirs {
		idx, err := strconv.Atoi(strings.TrimPrefix(filepath.Base(p), "shard-"))
		if err != nil {
			continue // not one of ours
		}
		if m.Shards == 1 || idx >= m.Shards {
			if err := os.RemoveAll(p); err != nil {
				return err
			}
		}
	}
	// Move the staged entries into place, the manifest last: its arrival is
	// what switches readers to the new layout.
	entries, err := os.ReadDir(cdir)
	if err != nil {
		return err
	}
	for _, ent := range entries {
		if ent.Name() == manifest.FileName {
			continue
		}
		target := filepath.Join(dir, ent.Name())
		if err := os.RemoveAll(target); err != nil {
			return err
		}
		if err := os.Rename(filepath.Join(cdir, ent.Name()), target); err != nil {
			return err
		}
	}
	if err := os.Rename(manifest.Path(cdir), manifest.Path(dir)); err != nil {
		return err
	}
	return os.RemoveAll(cdir)
}

// shardDir returns shard i's directory: Dir itself for a single-shard
// engine (the flat pre-sharding layout), Dir/shard-<i> otherwise. Empty for
// in-memory engines.
func shardDir(dir string, i, shards int) string {
	if dir == "" {
		return ""
	}
	if shards == 1 {
		return dir
	}
	return filepath.Join(dir, fmt.Sprintf("shard-%d", i))
}

func openFileStore(dir string, opts Options, resume bool) (disk.BlockStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	if !resume {
		return disk.NewAsyncFileStore(dir, opts.NumDisks, opts.BlockSize, opts.BlocksPerDisk, opts.MmapReads)
	}
	// Reopen existing files without truncation.
	return disk.OpenAsyncFileStore(dir, opts.NumDisks, opts.BlockSize, opts.BlocksPerDisk, opts.MmapReads)
}

func (s *shard) vocabPath() string { return filepath.Join(s.dir, "vocab.txt") }

func (s *shard) saveVocab() error {
	tmp := s.vocabPath() + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := s.vocab.WriteTo(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, s.vocabPath())
}

func (s *shard) loadVocab() error {
	f, err := os.Open(s.vocabPath())
	if err != nil {
		if os.IsNotExist(err) {
			return nil // empty index checkpoint with no vocabulary yet
		}
		return err
	}
	defer f.Close()
	v, err := vocab.Read(f)
	if err != nil {
		return err
	}
	s.vocab = v
	return nil
}
