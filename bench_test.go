// Benchmarks regenerating every table and figure of the paper's evaluation.
// Each benchmark drives the full pipeline stage behind its artifact at the
// quick experiment scale (the same shape as the paper's corpus at a
// fraction of the volume; run cmd/experiments for the full-scale numbers).
package dualindex

import (
	"fmt"
	"sync"
	"testing"

	"dualindex/internal/corpus"
	"dualindex/internal/disk"
	"dualindex/internal/experiments"
	"dualindex/internal/longlist"
	"dualindex/internal/sim"
)

var (
	benchEnvOnce sync.Once
	benchEnv     *experiments.Env
	benchEnvErr  error
)

// env returns a shared quick-scale experiment environment. Policy runs are
// memoised inside the env, so each benchmark below times its own pipeline
// stage by constructing what it needs from the shared corpus and bucket
// trace.
func env(b *testing.B) *experiments.Env {
	b.Helper()
	benchEnvOnce.Do(func() {
		benchEnv, benchEnvErr = experiments.NewEnv(experiments.QuickParams())
	})
	if benchEnvErr != nil {
		b.Fatal(benchEnvErr)
	}
	return benchEnv
}

// freshDisks runs the compute-disks stage (unmemoised) for one policy.
func freshDisks(b *testing.B, e *experiments.Env, p longlist.Policy) *sim.DiskResult {
	b.Helper()
	r, err := sim.ComputeDisks(e.Trace, sim.DiskConfig{
		Geometry:     e.Params.Geometry,
		BlockPosting: e.Params.BlockPosting,
		Policy:       p,
	})
	if err != nil {
		b.Fatal(err)
	}
	return r
}

// BenchmarkTable1Statistics regenerates Table 1: corpus statistics.
func BenchmarkTable1Statistics(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := e.Table1()
		if s.TotalPostings == 0 {
			b.Fatal("empty stats")
		}
	}
}

// BenchmarkTable3BatchUpdate regenerates Table 3: building one batch update
// (the invert-index stage for one day).
func BenchmarkTable3BatchUpdate(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(e.Batches[0].Update()) == 0 {
			b.Fatal("empty update")
		}
	}
}

// BenchmarkFigure1BucketAnimation regenerates Figure 1: the bucket
// algorithm on a 100-bucket system with per-change sampling of bucket 3.
func BenchmarkFigure1BucketAnimation(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		samples, err := e.Figure1(3, 2000)
		if err != nil {
			b.Fatal(err)
		}
		if len(samples) == 0 {
			b.Fatal("no samples")
		}
	}
}

// BenchmarkFigure7WordFractions regenerates Figure 7: the compute-buckets
// stage with word categorisation over every batch.
func BenchmarkFigure7WordFractions(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr, err := sim.ComputeBuckets(e.Batches, sim.ComputeBucketsConfig{
			Buckets:       e.Params.Buckets,
			BucketSize:    e.Params.BucketSize,
			ObserveBucket: -1,
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(tr.Stats) != len(e.Batches) {
			b.Fatal("missing stats")
		}
	}
}

// benchPolicyCurve is the compute-disks stage for one figure policy: the
// unit of work behind each curve of Figures 8, 9 and 10.
func benchPolicyCurve(b *testing.B, p longlist.Policy, metric func(sim.UpdateMetrics) float64) {
	e := env(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := freshDisks(b, e, p)
		if metric(r.PerUpdate[len(r.PerUpdate)-1]) < 0 {
			b.Fatal("bad metric")
		}
	}
}

// BenchmarkFigure8CumulativeIO regenerates Figure 8 (all five curves).
func BenchmarkFigure8CumulativeIO(b *testing.B) {
	for _, p := range experiments.FigureCurvePolicies() {
		b.Run(p.String(), func(b *testing.B) {
			benchPolicyCurve(b, p, func(m sim.UpdateMetrics) float64 { return float64(m.CumOps) })
		})
	}
}

// BenchmarkFigure9Utilization regenerates Figure 9.
func BenchmarkFigure9Utilization(b *testing.B) {
	for _, p := range experiments.FigureCurvePolicies() {
		b.Run(p.String(), func(b *testing.B) {
			benchPolicyCurve(b, p, func(m sim.UpdateMetrics) float64 { return m.Utilization })
		})
	}
}

// BenchmarkFigure10ReadCost regenerates Figure 10.
func BenchmarkFigure10ReadCost(b *testing.B) {
	for _, p := range experiments.FigureCurvePolicies() {
		b.Run(p.String(), func(b *testing.B) {
			benchPolicyCurve(b, p, func(m sim.UpdateMetrics) float64 { return m.AvgReadsPerList })
		})
	}
}

// BenchmarkTable5NewStyleAlloc regenerates Table 5: the six allocation
// strategies for the new style.
func BenchmarkTable5NewStyleAlloc(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := e.Table5()
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 6 {
			b.Fatal("missing rows")
		}
	}
}

// BenchmarkTable6WholeStyleAlloc regenerates Table 6: the nine allocation
// strategies for the whole style.
func BenchmarkTable6WholeStyleAlloc(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := e.Table6()
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 9 {
			b.Fatal("missing rows")
		}
	}
}

// BenchmarkFigure11ProportionalUtilization regenerates Figure 11: the
// proportional-constant sweep for the new and whole styles.
func BenchmarkFigure11ProportionalUtilization(b *testing.B) {
	e := env(b)
	ks := experiments.DefaultSweepKs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, style := range []longlist.Style{longlist.StyleNew, longlist.StyleWhole} {
			pts, err := e.ProportionalSweep(style, ks)
			if err != nil {
				b.Fatal(err)
			}
			if len(pts) != len(ks) {
				b.Fatal("missing points")
			}
		}
	}
}

// BenchmarkFigure12InPlaceUpdates regenerates Figure 12 (same sweep, the
// in-place update counter).
func BenchmarkFigure12InPlaceUpdates(b *testing.B) {
	e := env(b)
	ks := experiments.DefaultSweepKs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pts, err := e.ProportionalSweep(longlist.StyleNew, ks)
		if err != nil {
			b.Fatal(err)
		}
		if pts[len(pts)-1].InPlace == 0 {
			b.Fatal("no in-place updates")
		}
	}
}

// BenchmarkFigure13CumulativeTime regenerates Figure 13: the exercise-disks
// stage (timing model with coalescing) for each timed policy.
func BenchmarkFigure13CumulativeTime(b *testing.B) {
	e := env(b)
	for _, p := range experiments.FigureCurvePolicies() {
		if p.Style == longlist.StyleFill && p.Limit == longlist.LimitZero {
			continue // omitted in the paper: would not fit on disk
		}
		r, err := e.RunPolicy(p)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(p.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := e.Exercise(r)
				if res.Total() <= 0 {
					b.Fatal("no time")
				}
			}
		})
	}
}

// BenchmarkFigure14TimePerUpdate regenerates Figure 14 (per-update times of
// the same execution).
func BenchmarkFigure14TimePerUpdate(b *testing.B) {
	e := env(b)
	r, err := e.RunPolicy(longlist.QueryOptimized())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := e.Exercise(r)
		if len(res.Batches) != len(e.Batches) {
			b.Fatal("missing batches")
		}
	}
}

// BenchmarkExtDiskSweep regenerates the extension experiment: build time
// versus disk count and disk generation (including the optical profile).
func BenchmarkExtDiskSweep(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pts, err := e.ExtensionDiskSweep([]int{1, 4}, []disk.Profile{disk.Seagate1993(), disk.Optical1993()})
		if err != nil {
			b.Fatal(err)
		}
		if len(pts) != 4 {
			b.Fatal("missing points")
		}
	}
}

// BenchmarkExtScaleUp regenerates the extension experiment: the same
// pipeline at growing database scales.
func BenchmarkExtScaleUp(b *testing.B) {
	base := experiments.QuickParams()
	base.Corpus.Days = 10
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pts, err := experiments.ExtensionScaleSweep(base, []float64{0.5, 1.0}, longlist.NewRecommended())
		if err != nil {
			b.Fatal(err)
		}
		if pts[1].Ops == 0 {
			b.Fatal("no ops")
		}
	}
}

// BenchmarkEngineIndexing measures end-to-end indexing throughput of the
// public engine (documents tokenized, batched and flushed to disk
// structures), in documents per iteration.
func BenchmarkEngineIndexing(b *testing.B) {
	cfg := corpus.DefaultConfig()
	cfg.Days = 1
	cfg.DocsPerDay = 200
	cfg.WordsPerDoc = 40
	batches, err := corpus.GenerateAll(cfg)
	if err != nil {
		b.Fatal(err)
	}
	texts := make([]string, 0, len(batches[0].Docs))
	for _, d := range batches[0].Docs {
		texts = append(texts, corpus.DocText(d, 0))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng, err := Open(Options{Buckets: 64, BucketSize: 512})
		if err != nil {
			b.Fatal(err)
		}
		for _, t := range texts {
			eng.AddDocument(t)
		}
		if _, err := eng.FlushBatch(); err != nil {
			b.Fatal(err)
		}
		eng.Close()
	}
}

// BenchmarkEngineBooleanQuery measures boolean query latency against a
// built index.
func BenchmarkEngineBooleanQuery(b *testing.B) {
	eng, err := Open(Options{Buckets: 64, BucketSize: 512})
	if err != nil {
		b.Fatal(err)
	}
	defer eng.Close()
	cfg := corpus.DefaultConfig()
	cfg.Days = 3
	cfg.DocsPerDay = 150
	cfg.WordsPerDoc = 40
	batches, err := corpus.GenerateAll(cfg)
	if err != nil {
		b.Fatal(err)
	}
	for _, batch := range batches {
		for _, d := range batch.Docs {
			eng.AddDocument(corpus.DocText(d, batch.Day))
		}
		if _, err := eng.FlushBatch(); err != nil {
			b.Fatal(err)
		}
	}
	q := fmt.Sprintf("(%s and %s) or %s",
		corpus.WordString(0), corpus.WordString(5), corpus.WordString(40))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.SearchBoolean(q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineVectorQuery measures vector-space query latency (a
// 100-word document-derived query, the paper's vector workload).
func BenchmarkEngineVectorQuery(b *testing.B) {
	eng, err := Open(Options{Buckets: 64, BucketSize: 512})
	if err != nil {
		b.Fatal(err)
	}
	defer eng.Close()
	cfg := corpus.DefaultConfig()
	cfg.Days = 2
	cfg.DocsPerDay = 150
	cfg.WordsPerDoc = 40
	batches, err := corpus.GenerateAll(cfg)
	if err != nil {
		b.Fatal(err)
	}
	for _, batch := range batches {
		for _, d := range batch.Docs {
			eng.AddDocument(corpus.DocText(d, batch.Day))
		}
		if _, err := eng.FlushBatch(); err != nil {
			b.Fatal(err)
		}
	}
	var query string
	for w := corpus.WordID(0); w < 100; w++ {
		query += corpus.WordString(w) + " "
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.SearchVector(query, 10); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtBuddyAblation regenerates the allocator ablation.
func BenchmarkExtBuddyAblation(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := e.AblationAllocators()
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 4 {
			b.Fatal("missing rows")
		}
	}
}

// BenchmarkExtAdaptiveAblation regenerates the adaptive-allocation ablation.
func BenchmarkExtAdaptiveAblation(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := e.AblationAdaptive()
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 6 {
			b.Fatal("missing rows")
		}
	}
}

// BenchmarkExtRebalance regenerates the bucket-rebalancing extension.
func BenchmarkExtRebalance(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pts, err := e.ExtensionRebalance(0.85)
		if err != nil {
			b.Fatal(err)
		}
		if len(pts) != 2 {
			b.Fatal("missing points")
		}
	}
}

// BenchmarkExtQueryWorkloads regenerates the boolean-vs-vector workload
// study.
func BenchmarkExtQueryWorkloads(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := e.QueryWorkloads(20)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 4 {
			b.Fatal("missing rows")
		}
	}
}

// BenchmarkExtCompression regenerates the posting-codec study.
func BenchmarkExtCompression(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := e.CompressionStudy()
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 3 {
			b.Fatal("missing rows")
		}
	}
}

// BenchmarkExtQueryTime regenerates the list-read latency study.
func BenchmarkExtQueryTime(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := e.QueryTimeStudy()
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

// BenchmarkEnginePhraseQuery measures the positional verification path.
func BenchmarkEnginePhraseQuery(b *testing.B) {
	eng, err := Open(Options{KeepDocuments: true, Buckets: 64, BucketSize: 512})
	if err != nil {
		b.Fatal(err)
	}
	defer eng.Close()
	cfg := corpus.DefaultConfig()
	cfg.Days = 2
	cfg.DocsPerDay = 100
	cfg.WordsPerDoc = 40
	batches, err := corpus.GenerateAll(cfg)
	if err != nil {
		b.Fatal(err)
	}
	for _, batch := range batches {
		for _, d := range batch.Docs {
			eng.AddDocument(corpus.DocText(d, batch.Day))
		}
		if _, err := eng.FlushBatch(); err != nil {
			b.Fatal(err)
		}
	}
	w1, w2 := corpus.WordString(3), corpus.WordString(9)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.SearchNear(w1, w2, 10); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtRebuildBaseline regenerates the reconstruction-vs-incremental
// motivation comparison.
func BenchmarkExtRebuildBaseline(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := e.Motivation()
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 4 {
			b.Fatal("missing rows")
		}
	}
}
