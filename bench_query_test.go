// Benchmarks for the query pipeline: boolean and vector latency through the
// parse→plan→execute pipeline against in-file reimplementations of the
// direct legacy evaluators (parse → prefetch → EvalBoolean/EvalVector, the
// pre-pipeline shape), plus the unified entry point under both scoring
// models. TestQueryBenchReport reruns the points through testing.Benchmark
// and writes BENCH_query.json; its gate is that the pipeline adds no
// measurable overhead to the legacy paths.
package dualindex

import (
	"encoding/json"
	"os"
	"testing"

	"dualindex/internal/disk"
	"dualindex/internal/lexer"
	"dualindex/internal/query"
)

func benchQueryOpts(shards int) Options {
	return Options{
		Shards:        shards,
		Buckets:       64,
		BucketSize:    128,
		NumDisks:      4,
		BlocksPerDisk: 65536,
		BlockSize:     512,
		newStore: func(numDisks, blockSize int) disk.BlockStore {
			return slowStore{disk.NewMemStore(numDisks, blockSize), benchDelay}
		},
	}
}

var benchQueryCorpus = synthTexts(131, 300, 120, 40)

func benchQueryEngine(b *testing.B) *Engine {
	b.Helper()
	eng, err := Open(benchQueryOpts(2))
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { eng.Close() })
	for j, text := range benchQueryCorpus {
		eng.AddDocument(text)
		if (j+1)%100 == 0 {
			if _, err := eng.FlushBatch(); err != nil {
				b.Fatal(err)
			}
		}
	}
	return eng
}

var benchQueryBooleans = []string{
	"waa and wab",
	"wac or (wad and not wae)",
	"wa* and not waa",
	"(waf or wag) and (wah or wai)",
}

const benchQueryVectorText = "waa wab wac wad wae waf wag wah wai waj wak wal wam wan wao wap"

// legacySearchBoolean is the pre-pipeline SearchBoolean, byte for byte:
// parse, prefetch every term per shard, EvalBoolean, k-way merge. Kept here
// as the benchmark baseline the pipeline must not regress against.
func legacySearchBoolean(e *Engine, q string) ([]DocID, error) {
	qo := e.obs.beginQuery("boolean")
	expr, err := query.Parse(q)
	if err != nil {
		return nil, err
	}
	qo.routeDone()
	lists, err := fanOut(e, func(s *shard) ([]DocID, error) {
		s.mu.RLock()
		defer s.mu.RUnlock()
		t0 := s.obs.now()
		src, err := query.PrefetchExpr(expr, shardSource{s}, s.opts.Workers)
		if err != nil {
			return nil, err
		}
		t1 := s.obs.observeFetch(t0)
		l, err := query.EvalBoolean(expr, src)
		if err != nil {
			return nil, err
		}
		s.obs.observeScore(t1)
		return l.Docs(), nil
	})
	if err != nil {
		return nil, err
	}
	qo.mergeStart()
	docs := query.MergeDocLists(lists)
	qo.finish(q, len(docs))
	return docs, nil
}

// legacySearchVector is the pre-pipeline SearchVector: tokenize, prefetch,
// EvalVector per shard, merge the per-shard top-k lists.
func legacySearchVector(e *Engine, text string, k int) ([]Match, error) {
	qo := e.obs.beginQuery("vector")
	words := lexer.Tokenize(text, e.opts.Lexer)
	total := e.collectionSize()
	vq := query.FromDocument(words)
	qo.routeDone()
	groups, err := fanOut(e, func(s *shard) ([]Match, error) {
		s.mu.RLock()
		defer s.mu.RUnlock()
		t0 := s.obs.now()
		src, err := query.PrefetchVector(vq, shardSource{s}, s.opts.Workers)
		if err != nil {
			return nil, err
		}
		t1 := s.obs.observeFetch(t0)
		ms, err := query.EvalVector(vq, src, total, k)
		if err != nil {
			return nil, err
		}
		s.obs.observeScore(t1)
		return ms, nil
	})
	if err != nil {
		return nil, err
	}
	qo.mergeStart()
	matches := query.MergeMatches(groups, k)
	qo.finish(text, len(matches))
	return matches, nil
}

func benchBoolean(b *testing.B, legacy bool) {
	eng := benchQueryEngine(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, q := range benchQueryBooleans {
			var err error
			if legacy {
				_, err = legacySearchBoolean(eng, q)
			} else {
				_, err = eng.SearchBoolean(q)
			}
			if err != nil {
				b.Fatal(err)
			}
		}
	}
}

func benchVector(b *testing.B, legacy bool) {
	eng := benchQueryEngine(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		if legacy {
			_, err = legacySearchVector(eng, benchQueryVectorText, 10)
		} else {
			_, err = eng.SearchVector(benchQueryVectorText, 10)
		}
		if err != nil {
			b.Fatal(err)
		}
	}
}

// benchUnified measures the full unified entry point on a compound query —
// parse, plan and a ranked structured execution every iteration.
func benchUnified(b *testing.B, scoring string) {
	opts := benchQueryOpts(2)
	opts.Scoring = scoring
	eng, err := Open(opts)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { eng.Close() })
	for j, text := range benchQueryCorpus {
		eng.AddDocument(text)
		if (j+1)%100 == 0 {
			if _, err := eng.FlushBatch(); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Query("(waa or wab) and wa* wac wad", 10); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkQueryPipeline(b *testing.B) {
	b.Run("boolean/legacy", func(b *testing.B) { benchBoolean(b, true) })
	b.Run("boolean/pipeline", func(b *testing.B) { benchBoolean(b, false) })
	b.Run("vector/legacy", func(b *testing.B) { benchVector(b, true) })
	b.Run("vector/pipeline", func(b *testing.B) { benchVector(b, false) })
	b.Run("unified/vector", func(b *testing.B) { benchUnified(b, ScoringVector) })
	b.Run("unified/bm25", func(b *testing.B) { benchUnified(b, ScoringBM25) })
}

// queryBenchReport is the schema of BENCH_query.json. Overheads are the
// pipeline time over the legacy time for the same workload (1.0 = parity).
type queryBenchReport struct {
	BooleanLegacyNsOp   int64   `json:"boolean_legacy_ns_op"`
	BooleanPipelineNsOp int64   `json:"boolean_pipeline_ns_op"`
	BooleanOverhead     float64 `json:"boolean_overhead"`
	VectorLegacyNsOp    int64   `json:"vector_legacy_ns_op"`
	VectorPipelineNsOp  int64   `json:"vector_pipeline_ns_op"`
	VectorOverhead      float64 `json:"vector_overhead"`
	UnifiedVectorNsOp   int64   `json:"unified_vector_ns_op"`
	UnifiedBM25NsOp     int64   `json:"unified_bm25_ns_op"`
}

// TestQueryBenchReport measures the pipeline against the legacy evaluators
// and writes BENCH_query.json. The gate: the pipeline is within 25% of the
// direct legacy paths (disk service time dominates both, so a bigger gap
// means the plan/execute layers added real per-query work). Skipped under
// -short.
func TestQueryBenchReport(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark harness skipped in -short mode")
	}
	rep := queryBenchReport{
		BooleanLegacyNsOp:   testing.Benchmark(func(b *testing.B) { benchBoolean(b, true) }).NsPerOp(),
		BooleanPipelineNsOp: testing.Benchmark(func(b *testing.B) { benchBoolean(b, false) }).NsPerOp(),
		VectorLegacyNsOp:    testing.Benchmark(func(b *testing.B) { benchVector(b, true) }).NsPerOp(),
		VectorPipelineNsOp:  testing.Benchmark(func(b *testing.B) { benchVector(b, false) }).NsPerOp(),
		UnifiedVectorNsOp:   testing.Benchmark(func(b *testing.B) { benchUnified(b, ScoringVector) }).NsPerOp(),
		UnifiedBM25NsOp:     testing.Benchmark(func(b *testing.B) { benchUnified(b, ScoringBM25) }).NsPerOp(),
	}
	rep.BooleanOverhead = float64(rep.BooleanPipelineNsOp) / float64(rep.BooleanLegacyNsOp)
	rep.VectorOverhead = float64(rep.VectorPipelineNsOp) / float64(rep.VectorLegacyNsOp)

	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_query.json", append(out, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("boolean overhead %.3fx, vector overhead %.3fx, unified vector %dns, bm25 %dns",
		rep.BooleanOverhead, rep.VectorOverhead, rep.UnifiedVectorNsOp, rep.UnifiedBM25NsOp)
	const maxOverhead = 1.25
	if rep.BooleanOverhead > maxOverhead {
		t.Errorf("boolean pipeline is %.2fx the legacy path (gate %.2fx)", rep.BooleanOverhead, maxOverhead)
	}
	if rep.VectorOverhead > maxOverhead {
		t.Errorf("vector pipeline is %.2fx the legacy path (gate %.2fx)", rep.VectorOverhead, maxOverhead)
	}
}
