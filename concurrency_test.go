package dualindex

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// TestConcurrentAddSearchFlush hammers the engine from three directions at
// once — writers adding documents, readers running boolean and vector
// queries, and a flusher pushing batches to disk — and then verifies that
// every document landed in the index. Run with -race, this is the stress
// test of the engine's snapshot/locking scheme.
func TestConcurrentAddSearchFlush(t *testing.T) {
	eng, err := Open(Options{Buckets: 32, BucketSize: 256, CacheBlocks: 128})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	const (
		writers   = 4
		docsEach  = 150
		searchers = 4
	)
	var wgWriters, wgOthers sync.WaitGroup
	var stop atomic.Bool

	for g := 0; g < writers; g++ {
		wgWriters.Add(1)
		go func(g int) {
			defer wgWriters.Done()
			for i := 0; i < docsEach; i++ {
				eng.AddDocument(fmt.Sprintf("writer%d common doc%d topic%d", g, i, i%7))
			}
		}(g)
	}
	for g := 0; g < searchers; g++ {
		wgOthers.Add(1)
		go func(g int) {
			defer wgOthers.Done()
			for !stop.Load() {
				if _, err := eng.SearchBoolean(fmt.Sprintf("common and topic%d", g%7)); err != nil {
					t.Errorf("boolean: %v", err)
					return
				}
				if _, err := eng.SearchVector("common topic1 topic2 topic3", 10); err != nil {
					t.Errorf("vector: %v", err)
					return
				}
				eng.Stats()
			}
		}(g)
	}
	wgOthers.Add(1)
	go func() {
		defer wgOthers.Done()
		for !stop.Load() {
			if _, err := eng.FlushBatch(); err != nil {
				t.Errorf("flush: %v", err)
				return
			}
		}
	}()

	wgWriters.Wait()
	stop.Store(true)
	wgOthers.Wait()
	if t.Failed() {
		return
	}

	if _, err := eng.FlushBatch(); err != nil {
		t.Fatal(err)
	}
	docs, err := eng.SearchBoolean("common")
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != writers*docsEach {
		t.Fatalf("found %d documents, want %d", len(docs), writers*docsEach)
	}
	if err := eng.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

// TestQueryDuringFlushSeesStableResults verifies the snapshot scheme's
// correctness property: a query running while a batch flushes returns
// exactly the documents it would return after the flush — mid-flush answers
// never expose half-applied state.
func TestQueryDuringFlushSeesStableResults(t *testing.T) {
	eng, err := Open(Options{Buckets: 16, BucketSize: 128})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	// Several flushed batches grow long lists; one more batch sits pending.
	const rounds = 6
	perRound := 80
	for r := 0; r < rounds; r++ {
		for i := 0; i < perRound; i++ {
			eng.AddDocument(fmt.Sprintf("stable anchor%d word%d", i%11, r*perRound+i))
		}
		if r < rounds-1 {
			if _, err := eng.FlushBatch(); err != nil {
				t.Fatal(err)
			}
		}
	}

	queries := []string{
		"stable",
		"stable and anchor3",
		"anchor1 or anchor7",
		"anchor*",
	}
	// A flush changes no query-visible state (the pending batch is already
	// searchable), so the pre-flush answers are THE answers: every
	// observation during the flush, and the post-flush answers, must match
	// them exactly.
	want := make([][]DocID, len(queries))
	for qi, q := range queries {
		docs, err := eng.SearchBoolean(q)
		if err != nil {
			t.Fatal(err)
		}
		want[qi] = docs
	}
	same := func(a, b []DocID) bool {
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}

	var wg sync.WaitGroup
	start := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start
			for round := 0; round < 30; round++ {
				for qi, q := range queries {
					docs, err := eng.SearchBoolean(q)
					if err != nil {
						t.Errorf("query %q: %v", q, err)
						return
					}
					if !same(docs, want[qi]) {
						t.Errorf("query %q: searcher %d saw %d docs mid-flush, want %d", q, g, len(docs), len(want[qi]))
						return
					}
				}
			}
		}(g)
	}
	close(start)
	if _, err := eng.FlushBatch(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	for qi, q := range queries {
		after, err := eng.SearchBoolean(q)
		if err != nil {
			t.Fatal(err)
		}
		if !same(after, want[qi]) {
			t.Fatalf("query %q: %d docs after flush, want %d", q, len(after), len(want[qi]))
		}
	}
}

// TestFlushDoesNotBlockSearches checks liveness structurally: a search
// issued while a flush is applying its batch completes against the
// snapshot. (With -race this also exercises snapshot reads racing the
// apply.)
func TestFlushDoesNotBlockSearches(t *testing.T) {
	eng, err := Open(Options{Buckets: 16, BucketSize: 128})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	for i := 0; i < 500; i++ {
		eng.AddDocument(fmt.Sprintf("liveness word%d filler%d", i%13, i))
	}
	var wg sync.WaitGroup
	searched := make(chan int, 64)
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			docs, err := eng.SearchBoolean("liveness and word3")
			if err != nil {
				t.Error(err)
				return
			}
			select {
			case searched <- len(docs):
			default:
			}
		}
	}()
	if _, err := eng.FlushBatch(); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()
	if len(searched) == 0 {
		t.Fatal("no search completed around the flush")
	}
}

// TestConcurrentDeleteAndSearch exercises Delete (which serialises with
// flushes) racing searches and flushes.
func TestConcurrentDeleteAndSearch(t *testing.T) {
	eng, err := Open(Options{Buckets: 16, BucketSize: 128})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	var ids []DocID
	for i := 0; i < 200; i++ {
		ids = append(ids, eng.AddDocument(fmt.Sprintf("victim word%d", i%5)))
	}
	if _, err := eng.FlushBatch(); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for _, id := range ids[:100] {
			eng.Delete(id)
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			if _, err := eng.SearchBoolean("victim"); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	if t.Failed() {
		return
	}
	docs, err := eng.SearchBoolean("victim")
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != 100 {
		t.Fatalf("after deletes, %d docs visible, want 100", len(docs))
	}
}
