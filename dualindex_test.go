package dualindex

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func TestQuickstartFlow(t *testing.T) {
	eng, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	d1 := eng.AddDocument("the quick brown fox jumps over the lazy dog")
	d2 := eng.AddDocument("the lazy cat sleeps")
	d3 := eng.AddDocument("quick cats and quick dogs")
	if eng.PendingDocs() != 3 {
		t.Fatalf("pending = %d", eng.PendingDocs())
	}
	// Pending documents are searchable before the flush (the paper: the
	// batch "can be searched simultaneously with the larger index").
	docs, err := eng.SearchBoolean("quick")
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != 2 || docs[0] != d1 || docs[1] != d3 {
		t.Fatalf("pre-flush search = %v", docs)
	}
	st, err := eng.FlushBatch()
	if err != nil {
		t.Fatal(err)
	}
	if st.Docs != 3 || st.Postings == 0 {
		t.Fatalf("batch stats %+v", st)
	}
	if eng.PendingDocs() != 0 {
		t.Fatal("flush left pending docs")
	}
	docs, err = eng.SearchBoolean("lazy and not cat")
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != 1 || docs[0] != d1 {
		t.Fatalf("post-flush search = %v", docs)
	}
	if _, err := eng.SearchBoolean("((("); err == nil {
		t.Fatal("bad query accepted")
	}
	if docs, err := eng.SearchBoolean("zebra"); err != nil || len(docs) != 0 {
		t.Fatalf("unknown word: %v %v", docs, err)
	}
	_ = d2
}

func TestFlushBatchEmptyNoOp(t *testing.T) {
	eng, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	st, err := eng.FlushBatch()
	if err != nil || st.Docs != 0 {
		t.Fatalf("empty flush: %+v, %v", st, err)
	}
	if eng.Stats().Batches != 0 {
		t.Fatal("empty flush counted a batch")
	}
}

func TestSearchVectorRanking(t *testing.T) {
	eng, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	best := eng.AddDocument("database systems store inverted lists on disk")
	mid := eng.AddDocument("inverted lists index documents")
	eng.AddDocument("completely unrelated text about cooking")
	if _, err := eng.FlushBatch(); err != nil {
		t.Fatal(err)
	}
	matches, err := eng.SearchVector("inverted lists for database disk storage", 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 2 {
		t.Fatalf("matches = %v", matches)
	}
	if matches[0].Doc != best || matches[1].Doc != mid {
		t.Fatalf("ranking wrong: %v", matches)
	}
}

func TestDeleteAndSweep(t *testing.T) {
	eng, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	d1 := eng.AddDocument("shared word alpha")
	d2 := eng.AddDocument("shared word beta")
	if _, err := eng.FlushBatch(); err != nil {
		t.Fatal(err)
	}
	eng.Delete(d1)
	docs, err := eng.SearchBoolean("shared")
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != 1 || docs[0] != d2 {
		t.Fatalf("post-delete search = %v", docs)
	}
	if eng.Stats().Deleted != 1 {
		t.Fatal("deleted count wrong")
	}
	if err := eng.Sweep(); err != nil {
		t.Fatal(err)
	}
	if eng.Stats().Deleted != 0 {
		t.Fatal("sweep left deletions")
	}
	docs, _ = eng.SearchBoolean("shared")
	if len(docs) != 1 || docs[0] != d2 {
		t.Fatalf("post-sweep search = %v", docs)
	}
}

func TestDeleteVisibleInPendingBatch(t *testing.T) {
	eng, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	d := eng.AddDocument("ephemeral words")
	eng.Delete(d)
	docs, err := eng.SearchBoolean("ephemeral")
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != 0 {
		t.Fatalf("deleted pending doc visible: %v", docs)
	}
}

func TestPolicyConversions(t *testing.T) {
	for _, p := range []Policy{PolicyFastUpdate, PolicyBalanced, PolicyFastQuery, PolicyExtents} {
		if _, err := p.internal(); err != nil {
			t.Errorf("policy %+v rejected: %v", p, err)
		}
	}
	for _, p := range []Policy{
		{Style: "nope"},
		{Style: "new", InPlace: true, Alloc: "nope"},
		{Style: "new", InPlace: true, Alloc: "proportional", K: 0.2},
	} {
		if _, err := p.internal(); err == nil {
			t.Errorf("bad policy %+v accepted", p)
		}
	}
}

func TestAllPoliciesAnswerIdentically(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	vocabulary := []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta", "theta"}
	var docs []string
	for i := 0; i < 120; i++ {
		var b strings.Builder
		for j := 0; j < 5; j++ {
			b.WriteString(vocabulary[r.Intn(len(vocabulary))])
			b.WriteString(" ")
		}
		docs = append(docs, b.String())
	}
	queries := []string{"alpha", "alpha and beta", "(gamma or delta) and not epsilon", "zeta or eta"}
	var reference [][]DocID
	for _, pol := range []Policy{PolicyFastUpdate, PolicyBalanced, PolicyFastQuery, PolicyExtents} {
		p := pol
		eng, err := Open(Options{Policy: &p, Buckets: 8, BucketSize: 64})
		if err != nil {
			t.Fatal(err)
		}
		for i, d := range docs {
			eng.AddDocument(d)
			if i%25 == 24 {
				if _, err := eng.FlushBatch(); err != nil {
					t.Fatal(err)
				}
			}
		}
		if _, err := eng.FlushBatch(); err != nil {
			t.Fatal(err)
		}
		var got [][]DocID
		for _, q := range queries {
			ds, err := eng.SearchBoolean(q)
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, ds)
		}
		eng.Close()
		if reference == nil {
			reference = got
			continue
		}
		for qi := range queries {
			if fmt.Sprint(got[qi]) != fmt.Sprint(reference[qi]) {
				t.Errorf("policy %+v query %q: %v != %v", pol, queries[qi], got[qi], reference[qi])
			}
		}
	}
}

func TestPersistenceAcrossOpen(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Dir: dir, Buckets: 8, BucketSize: 64}
	eng, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	d1 := eng.AddDocument("persistent storage rocks")
	eng.AddDocument("volatile memory fades")
	if _, err := eng.FlushBatch(); err != nil {
		t.Fatal(err)
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	docs, err := re.SearchBoolean("persistent and storage")
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != 1 || docs[0] != d1 {
		t.Fatalf("reopened search = %v", docs)
	}
	// New documents continue the identifier sequence.
	d3 := re.AddDocument("another persistent doc")
	if d3 <= 2 {
		t.Fatalf("doc id %d did not continue after 2", d3)
	}
	if _, err := re.FlushBatch(); err != nil {
		t.Fatal(err)
	}
	docs, _ = re.SearchBoolean("persistent")
	if len(docs) != 2 {
		t.Fatalf("post-resume search = %v", docs)
	}
}

func TestStatsAndReadCost(t *testing.T) {
	eng, err := Open(Options{Buckets: 4, BucketSize: 32})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	// Make one word frequent enough to overflow its bucket.
	for i := 0; i < 50; i++ {
		eng.AddDocument(fmt.Sprintf("hammer word%d", i))
	}
	if _, err := eng.FlushBatch(); err != nil {
		t.Fatal(err)
	}
	st := eng.Stats()
	if st.Docs != 50 || st.Batches != 1 {
		t.Fatalf("stats %+v", st)
	}
	if st.LongLists == 0 {
		t.Fatal("no long lists despite bucket overflow")
	}
	if st.WriteOps == 0 {
		t.Fatal("no write ops recorded")
	}
	if eng.ReadCost("hammer") == 0 {
		t.Error("frequent word has zero read cost")
	}
	if eng.ReadCost("word1") != 0 {
		t.Error("bucket word should cost 0 reads")
	}
	if eng.ReadCost("absent") != 0 {
		t.Error("absent word should cost 0 reads")
	}
}

func TestConcurrentSearchDuringUpdates(t *testing.T) {
	// The paper's operational premise: 7x24 service, queries flowing while
	// the index is updated in place. Run concurrent readers against a
	// writer applying batches; every search must see a consistent index.
	eng, err := Open(Options{Buckets: 16, BucketSize: 128})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	// Seed one batch so queries have something to find.
	eng.AddDocument("anchor term stays forever")
	if _, err := eng.FlushBatch(); err != nil {
		t.Fatal(err)
	}

	done := make(chan struct{})
	errs := make(chan error, 8)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				docs, err := eng.SearchBoolean("anchor and term")
				if err != nil {
					errs <- err
					return
				}
				if len(docs) == 0 {
					errs <- fmt.Errorf("anchor document vanished")
					return
				}
				if _, err := eng.SearchVector("anchor stays", 5); err != nil {
					errs <- err
					return
				}
				_ = eng.Stats()
			}
		}()
	}
	for batch := 0; batch < 20; batch++ {
		for d := 0; d < 20; d++ {
			eng.AddDocument(fmt.Sprintf("filler batch%d doc%d common words here", batch, d))
		}
		if _, err := eng.FlushBatch(); err != nil {
			t.Fatal(err)
		}
	}
	close(done)
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
	docs, err := eng.SearchBoolean("common")
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != 400 {
		t.Fatalf("final common docs = %d, want 400", len(docs))
	}
}

func TestTruncationQueries(t *testing.T) {
	eng, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	d1 := eng.AddDocument("inverted lists support incremental updates")
	d2 := eng.AddDocument("index inversion on disk")
	d3 := eng.AddDocument("nothing relevant here")
	if _, err := eng.FlushBatch(); err != nil {
		t.Fatal(err)
	}
	docs, err := eng.SearchBoolean("inver*")
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != 2 || docs[0] != d1 || docs[1] != d2 {
		t.Fatalf("inver* = %v", docs)
	}
	docs, err = eng.SearchBoolean("in* and not index")
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != 1 || docs[0] != d1 {
		t.Fatalf("in* and not index = %v", docs)
	}
	if docs, err := eng.SearchBoolean("zzz*"); err != nil || len(docs) != 0 {
		t.Fatalf("zzz* = %v, %v", docs, err)
	}
	_ = d3
}

func TestRebalanceViaEngine(t *testing.T) {
	eng, err := Open(Options{Buckets: 8, BucketSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	for i := 0; i < 100; i++ {
		eng.AddDocument(fmt.Sprintf("common filler doc%d words", i))
	}
	if _, err := eng.FlushBatch(); err != nil {
		t.Fatal(err)
	}
	lf := eng.BucketLoadFactor()
	if lf <= 0 {
		t.Fatal("zero load factor")
	}
	docsBefore, err := eng.SearchBoolean("common and filler")
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.RebalanceBuckets(32, 256); err != nil {
		t.Fatal(err)
	}
	if eng.BucketLoadFactor() >= lf {
		t.Errorf("load factor did not drop: %v → %v", lf, eng.BucketLoadFactor())
	}
	docsAfter, err := eng.SearchBoolean("common and filler")
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(docsBefore) != fmt.Sprint(docsAfter) {
		t.Fatal("rebalance changed query answers")
	}
}

func TestOptionsBadPolicyRejected(t *testing.T) {
	p := Policy{Style: "bogus"}
	if _, err := Open(Options{Policy: &p}); err == nil {
		t.Fatal("bogus policy accepted")
	}
}

func TestVocabCorruptionDetectedOnOpen(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Dir: dir, Buckets: 8, BucketSize: 64}
	eng, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	eng.AddDocument("some persistent words")
	if _, err := eng.FlushBatch(); err != nil {
		t.Fatal(err)
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "vocab.txt"), []byte("not a number\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(opts); err == nil {
		t.Fatal("corrupt vocabulary accepted")
	}
}

func TestPendingVisibleAcrossStructures(t *testing.T) {
	// A word already long on disk must merge with pending postings for it.
	eng, err := Open(Options{Buckets: 4, BucketSize: 32})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	for i := 0; i < 40; i++ {
		eng.AddDocument(fmt.Sprintf("hot filler%d", i))
	}
	if _, err := eng.FlushBatch(); err != nil {
		t.Fatal(err)
	}
	if eng.ReadCost("hot") == 0 {
		t.Skip("word did not go long at this scale")
	}
	before, err := eng.SearchBoolean("hot")
	if err != nil {
		t.Fatal(err)
	}
	d := eng.AddDocument("hot pending addition")
	after, err := eng.SearchBoolean("hot")
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != len(before)+1 || after[len(after)-1] != d {
		t.Fatalf("pending posting not merged: %d → %d", len(before), len(after))
	}
}

func TestStatsBucketLoadAndDocs(t *testing.T) {
	eng, err := Open(Options{KeepDocuments: true})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	d := eng.AddDocument("alpha beta gamma")
	if _, err := eng.FlushBatch(); err != nil {
		t.Fatal(err)
	}
	if eng.BucketLoadFactor() <= 0 {
		t.Error("zero load factor after indexing")
	}
	text, ok, err := eng.Document(d)
	if err != nil || !ok || text != "alpha beta gamma" {
		t.Fatalf("Document = %q %v %v", text, ok, err)
	}
}

func TestEngineCheckConsistency(t *testing.T) {
	eng, err := Open(Options{Buckets: 8, BucketSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	for i := 0; i < 60; i++ {
		eng.AddDocument(fmt.Sprintf("consistency probe %d shared", i))
	}
	if _, err := eng.FlushBatch(); err != nil {
		t.Fatal(err)
	}
	if err := eng.CheckConsistency(); err != nil {
		t.Fatalf("consistent engine failed fsck: %v", err)
	}
}
